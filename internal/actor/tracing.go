package actor

import (
	"time"

	"actop/internal/trace"
)

// This file is the actor-layer half of the tracing plane (internal/trace):
// sampling at the root call, hop-carried context on envelopes, per-turn
// timing through the activation mailbox, and cluster-wide span collection.

// traceCtx is the sampled-trace identity a call runs under: the trace it
// belongs to and the span that issued it. A nil traceCtx means unsampled —
// the whole capture path reduces to nil checks.
type traceCtx struct {
	traceID  uint64
	parentID uint64
}

// turnTiming rides a traced invocation through the activation mailbox:
// trace identity in (so calls the turn makes join the trace), measured
// mailbox wait and execution time out. The worker running the turn writes
// the timings before the invocation's respond callback fires, and respond's
// channel send orders those writes before any reader.
type turnTiming struct {
	traceID uint64
	spanID  uint64

	enqueuedAt time.Time
	workQueue  time.Duration
	exec       time.Duration
	epoch      uint64
	// snapshot marks a turn that triggered a durable snapshot capture, so
	// the span annotates durability cost the way it annotates retries.
	snapshot bool
}

// ctx builds the trace context turns executed under this timing inherit.
func (t *turnTiming) ctx() *traceCtx {
	return &traceCtx{traceID: t.traceID, parentID: t.spanID}
}

// finishCall completes a call's client-side accounting: the span total, the
// network residual, the ring publish, and the per-method registry series.
// Durations shipped in the reply are already in the span; Network is what
// remains of the measured total after every attributed component, so a
// client span's components always sum to its total (clamped at zero when
// retries make the last attempt cheaper than the whole call).
func (s *System) finishCall(sp *trace.Span, start time.Time, method string, err error) {
	if sp == nil && s.callDur == nil && s.sloWin == nil {
		return
	}
	total := time.Since(start)
	if s.sloWin != nil {
		// SLO watcher window: the obs loop snapshots and resets this on
		// every check tick (obs.go), so it always holds roughly the last
		// second of call latency.
		s.sloWin.Record(total)
	}
	if s.callDur != nil {
		if sp != nil {
			// Traced call: offer its trace id as a tail-latency exemplar so
			// a p99 spike on the scrape page links to a full span tree.
			s.callDur.ObserveExemplar(total, sp.TraceID, method)
		} else {
			s.callDur.Observe(total, method)
		}
	}
	if sp == nil {
		return
	}
	sp.Total = total
	if err != nil {
		sp.Err = err.Error()
	}
	if sp.Kind == "client" {
		if resid := total - sp.ComponentSum(); resid > 0 {
			sp.Network = resid
		}
	}
	s.spans.Put(sp)
	if s.callComp != nil {
		for _, c := range trace.Components {
			if v := sp.Component(c); v > 0 {
				s.callComp.Observe(v, method, c)
			}
		}
	}
}

// TraceRing exposes this node's completed-span ring (read-only use:
// Snapshot/ForTrace).
func (s *System) TraceRing() *trace.Ring { return s.spans }

// ClusterSpans collects every buffered span of one trace from the whole
// cluster — this node's ring plus a control RPC to each peer. Unreachable
// peers are skipped: a partial tree still renders, with the missing hops
// absent (Assemble tolerates one-sided spans).
func (s *System) ClusterSpans(traceID uint64) []trace.Span {
	spans := s.spans.ForTrace(traceID)
	for _, p := range s.peers {
		if p == s.Node() {
			continue
		}
		var remote []trace.Span
		if err := s.controlCall(p, ctlTraces, traceID, &remote); err == nil {
			spans = append(spans, remote...)
		}
	}
	return spans
}

// ClusterTrace assembles the cross-node call tree for one trace.
func (s *System) ClusterTrace(traceID uint64) []*trace.TreeNode {
	return trace.Assemble(s.ClusterSpans(traceID))
}
