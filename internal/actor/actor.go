// Package actor is a distributed virtual-actor runtime in the style of
// Orleans (§2): actors are addressed by type/key references, instantiated
// on demand on some server, invoked location-transparently (local calls
// deep-copy arguments, remote calls serialize them), and can be migrated
// between servers live — the property ActOp's partitioner exploits.
//
// Each node runs a SEDA pipeline (receive → execute → send) with resizable
// thread pools, so ActOp's thread controller (internal/core) can retune it
// from the queuing model.
package actor

import (
	"fmt"
	"time"

	"actop/internal/graph"
	"actop/internal/metrics"
	"actop/internal/transport"
)

// Ref addresses a virtual actor: a type name (registered with the system)
// plus an application key. Refs are location-transparent; the runtime finds
// or creates the activation.
type Ref struct {
	Type string
	Key  string
}

// String renders "type/key".
func (r Ref) String() string { return r.Type + "/" + r.Key }

// Vertex maps the ref onto the communication-graph vertex id used by the
// partitioner: a 64-bit FNV-1a of the printable form. The mapping is
// deterministic and coordination-free across nodes, and doubles as the
// state-plane shard key (shard.go) — computed allocation-free, since it
// sits on the per-call hot path.
func (r Ref) Vertex() graph.Vertex { return graph.Vertex(refHash(r)) }

// Actor is the application-facing actor contract: a single Receive method
// dispatching on the method name with gob-encoded arguments. Activations
// are single-threaded: the runtime never calls Receive concurrently for
// one activation.
type Actor interface {
	Receive(ctx *Context, method string, args []byte) ([]byte, error)
}

// ValueReceiver is optionally implemented by actors that accept local
// calls as plain values, skipping serialization entirely. The runtime
// invokes ReceiveValue instead of Receive when the callee is co-located
// with the caller and the arguments implement codec.Copier (or are nil).
// args is already an isolated copy — the runtime calls CopyValue before
// the turn — and the returned value is isolated again before it crosses
// back (via its own CopyValue when implemented, else a serialization
// round trip). Remote calls and non-Copier arguments continue to arrive
// through Receive, so implementations must keep both paths semantically
// identical.
type ValueReceiver interface {
	ReceiveValue(ctx *Context, method string, args interface{}) (interface{}, error)
}

// Migratable is optionally implemented by actors whose state must survive
// migration and explicit deactivation: Snapshot is taken on the old node,
// Restore runs on the new one.
type Migratable interface {
	Snapshot() ([]byte, error)
	Restore(data []byte) error
}

// Durable is the opt-in marker for actors whose state must survive node
// death, not just migration: the runtime periodically captures their state
// off the turn path (see Config.SnapshotEvery/SnapshotInterval), ships it
// to Config.DurableReplicas rendezvous-chosen peers, and on failover
// re-activation restores the highest-epoch replica snapshot before
// admitting the first turn. The DurableActor method is a pure marker.
// Durability is only active when Config.DurableReplicas > 0.
//
// Actors that additionally implement codec.Copier get the cheap capture:
// the turn lock is held only for the deep copy, and the Snapshot encode
// runs on the background snapshotter pool.
type Durable interface {
	Migratable
	DurableActor()
}

// Factory creates a fresh (empty) actor instance of one type.
type Factory func() Actor

// PlacementPolicy decides where a new activation lives.
type PlacementPolicy int

// Placement policies (§3 discusses both).
const (
	// PlaceRandom places new activations uniformly at random — Orleans's
	// default; balances load, forgoes locality.
	PlaceRandom PlacementPolicy = iota
	// PlaceLocal places new activations on the node that first called them
	// — good when the callee is exclusively owned by its first caller,
	// pathological otherwise (§3).
	PlaceLocal
)

// Config configures one node of the actor system.
type Config struct {
	// Transport connects this node to its peers.
	Transport transport.Transport
	// Peers is the full static cluster membership, including this node.
	Peers []transport.NodeID

	// Stage sizing (defaults: 2 receivers, GOMAXPROCS workers, 2 senders;
	// queue capacity 4096).
	ReceiverWorkers int
	Workers         int
	SenderWorkers   int
	QueueCap        int

	// CallTimeout bounds a single actor call round trip (default 5s).
	CallTimeout time.Duration

	// Placement selects the new-activation policy (default PlaceRandom).
	Placement PlacementPolicy

	// MonitorCapacity sizes the per-node Space-Saving edge summary
	// (default 4096).
	MonitorCapacity int

	// LocCacheSize bounds the node's location cache (resident routes across
	// all state shards; default 128K). Eviction is per-shard clock
	// (second-chance): hot routes survive, cold ones are recycled one at a
	// time — never a wholesale reset.
	LocCacheSize int

	// ExchangeRejectWindow is Algorithm 1's cooldown on the receiving side
	// of a partition exchange: requests arriving sooner after this node's
	// last exchange are rejected (default one minute, as in the paper).
	ExchangeRejectWindow time.Duration

	// HeartbeatInterval is the failure detector's ping period; each ping
	// must round-trip within one interval or it counts as a miss
	// (default 1s). The detector only runs on multi-node clusters.
	HeartbeatInterval time.Duration
	// SuspectAfter is the consecutive missed heartbeats before a peer is
	// marked Suspect (default 2). Suspect peers get short per-attempt call
	// timeouts and are excluded from partition exchanges.
	SuspectAfter int
	// DeadAfter is the consecutive missed heartbeats before a peer is
	// declared Dead (default 5). Death triggers failover: routing state
	// pointing at the peer is purged, its directory ranges rehash to
	// survivors, and its actors re-activate elsewhere on next call.
	DeadAfter int
	// DisableFailover turns the whole failure-tolerance layer off: no
	// heartbeats, no membership states, no call retries, no reply dedup —
	// the pre-failover static-cluster behavior.
	DisableFailover bool
	// RetryBackoff is the initial delay between call retry attempts;
	// backoff doubles per retry (with ±50% jitter) up to 16× this value,
	// always within the CallTimeout budget (default 10ms).
	RetryBackoff time.Duration

	// DurableReplicas is the number of peer replicas each Durable actor's
	// snapshots are shipped to (K in the durability protocol). Zero — the
	// default — disables durability entirely: no captures, no snapshot
	// traffic, no recovery pulls.
	DurableReplicas int
	// SnapshotEvery is the dirty-turn count that triggers a snapshot
	// capture for a Durable activation (default 16).
	SnapshotEvery int
	// SnapshotInterval is the wall-clock bound on snapshot staleness: a
	// dirty Durable activation captures at its next turn once this much
	// time has passed since its last capture, even below SnapshotEvery
	// (default 2s).
	SnapshotInterval time.Duration
	// SnapshotWorkers sizes the background snapshotter pool that encodes
	// and ships captures off the turn path (default 2).
	SnapshotWorkers int
	// RecoveryConcurrency bounds concurrent failover recovery pulls so a
	// hot dead node cannot thundering-herd the surviving replicas
	// (default 8).
	RecoveryConcurrency int

	// DisableThreadControl turns off the live thread-allocation control
	// loop (§5) that core.NewOptimizer attaches to this node's stages; the
	// initial Workers/ReceiverWorkers/SenderWorkers split then stays fixed.
	DisableThreadControl bool
	// ThreadControlInterval is the controller's measure→solve→resize
	// period (default 10s, the paper's cadence). It overrides the
	// optimizer's ThreadPeriod when set.
	ThreadControlInterval time.Duration

	// TraceSampleRate is the fraction of root calls that carry a trace
	// (0 disables tracing entirely — the default; unsampled calls pay one
	// branch). Sampling is decided once at the root: nested calls inherit
	// the decision, so rates never compound across hops.
	TraceSampleRate float64
	// TraceRingSize caps the per-node ring of completed spans kept for
	// /debug/actop/traces and cluster trace assembly (default 4096).
	TraceRingSize int
	// Metrics, when set, receives the node's per-method call latency and
	// latency-component summaries (and lets embedders export them via
	// metrics.Registry.WritePrometheus). Nil disables registry recording.
	Metrics *metrics.Registry

	// DisableHotspots turns off the per-actor hot-spot profiler. On by
	// default: per-turn accounting batched per mailbox drain into a
	// bounded heavy-hitter sketch (internal/hotspot), O(HotspotK) memory.
	DisableHotspots bool
	// HotspotK sizes the hot-spot sketch — roughly how many actors the
	// node tracks as candidates for the hot table (default 512).
	HotspotK int
	// HotspotDecay is the profiler's cost half-life: every interval, all
	// tracked costs halve, so the table reads "hot now" (default 30s).
	HotspotDecay time.Duration
	// FlightRingSize caps the flight recorder's event ring (default 1024).
	FlightRingSize int
	// FlightDebounce is the minimum gap between anomaly dumps of the same
	// trigger kind (default 30s) — a storm of violations produces one
	// black-box dump, not one per violation.
	FlightDebounce time.Duration
	// SLOTarget, when non-zero, arms the p99 SLO watcher: call latency
	// feeds a rolling window, and a window whose p99 exceeds the target
	// triggers a debounced flight-recorder dump. Zero (the default)
	// disables the watcher and its per-call clock reads.
	SLOTarget time.Duration

	// Seed drives placement randomness.
	Seed int64
}

func (c *Config) fill() error {
	if c.Transport == nil {
		return fmt.Errorf("actor: config needs a transport")
	}
	if len(c.Peers) == 0 {
		c.Peers = []transport.NodeID{c.Transport.Node()}
	}
	found := false
	for _, p := range c.Peers {
		if p == c.Transport.Node() {
			found = true
		}
	}
	if !found {
		return fmt.Errorf("actor: peers must include this node %s", c.Transport.Node())
	}
	if c.ReceiverWorkers <= 0 {
		c.ReceiverWorkers = 2
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.SenderWorkers <= 0 {
		c.SenderWorkers = 2
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 4096
	}
	if c.CallTimeout <= 0 {
		c.CallTimeout = 5 * time.Second
	}
	if c.MonitorCapacity <= 0 {
		c.MonitorCapacity = 4096
	}
	if c.LocCacheSize <= 0 {
		c.LocCacheSize = 1 << 17
	}
	if c.ExchangeRejectWindow <= 0 {
		c.ExchangeRejectWindow = time.Minute
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = time.Second
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 2
	}
	if c.DeadAfter <= c.SuspectAfter {
		c.DeadAfter = c.SuspectAfter + 3
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 10 * time.Millisecond
	}
	if c.SnapshotEvery <= 0 {
		c.SnapshotEvery = 16
	}
	if c.SnapshotInterval <= 0 {
		c.SnapshotInterval = 2 * time.Second
	}
	if c.SnapshotWorkers <= 0 {
		c.SnapshotWorkers = 2
	}
	if c.RecoveryConcurrency <= 0 {
		c.RecoveryConcurrency = 8
	}
	if c.TraceRingSize <= 0 {
		c.TraceRingSize = 4096
	}
	if c.HotspotK <= 0 {
		c.HotspotK = 512
	}
	if c.HotspotDecay <= 0 {
		c.HotspotDecay = 30 * time.Second
	}
	if c.FlightRingSize <= 0 {
		c.FlightRingSize = 1024
	}
	if c.FlightDebounce <= 0 {
		c.FlightDebounce = 30 * time.Second
	}
	return nil
}

// Context is passed to Actor.Receive; it exposes the actor's identity and
// outbound calls (which the monitor observes as communication edges).
type Context struct {
	sys  *System
	self Ref
	// trc carries the executing turn's trace identity so calls made from
	// the turn join the same trace (nil when the turn is unsampled).
	trc *traceCtx
}

// Self reports the receiving actor's reference.
func (c *Context) Self() Ref { return c.self }

// Node reports the hosting node.
func (c *Context) Node() transport.NodeID { return c.sys.Node() }

// Call invokes another actor and decodes the result into reply (pass nil to
// ignore results). The call blocks the current activation turn, like an
// awaited call in Orleans.
//
// Because the turn holds a worker-stage thread while waiting, size
// Config.Workers above the expected number of concurrently blocked
// outbound calls (as with any synchronous-RPC thread pool), or let ActOp's
// thread controller grow the pool from measurements. Deep synchronous
// call cycles can deadlock, exactly as in Orleans.
func (c *Context) Call(to Ref, method string, args, reply interface{}) error {
	return c.sys.call(&c.self, c.trc, to, method, args, reply)
}
