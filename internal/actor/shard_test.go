package actor

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"actop/internal/metrics"
	"actop/internal/transport"
)

// newShardTestSystem builds a single standalone node with a custom location
// cache bound and optional metrics registry, for exercising the sharded
// state plane directly.
func newShardTestSystem(t *testing.T, cacheSize int, reg *metrics.Registry) *System {
	t.Helper()
	net := transport.NewNetwork(0)
	tr := net.Join("shard-node")
	sys, err := NewSystem(Config{
		Transport:    tr,
		LocCacheSize: cacheSize,
		Metrics:      reg,
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.RegisterType("counter", func() Actor { return &counterActor{} })
	t.Cleanup(sys.Stop)
	return sys
}

// refHash must stay bit-identical to hash/fnv over "Type\x00Key": the shard
// key, the vertex index key, and Ref.Vertex all assume the same hash, and
// partitioner vertex ids computed before this PR must not move.
func TestRefHashMatchesStdlibFNV(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	alpha := "abcdefghijklmnopqrstuvwxyz0123456789-_/."
	randStr := func(n int) string {
		b := make([]byte, n)
		for i := range b {
			b[i] = alpha[rng.Intn(len(alpha))]
		}
		return string(b)
	}
	refs := []Ref{
		{},
		{Type: "counter", Key: "1"},
		{Type: "", Key: "only-key"},
		{Type: "only-type", Key: ""},
		{Type: "a\x00b", Key: "c"}, // embedded separator byte
	}
	for i := 0; i < 500; i++ {
		refs = append(refs, Ref{Type: randStr(rng.Intn(24)), Key: randStr(rng.Intn(64))})
	}
	for _, r := range refs {
		h := fnv.New64a()
		h.Write([]byte(r.Type))
		h.Write([]byte{0})
		h.Write([]byte(r.Key))
		if want, got := h.Sum64(), refHash(r); got != want {
			t.Fatalf("refHash(%q/%q) = %#x, stdlib fnv = %#x", r.Type, r.Key, got, want)
		}
		if uint64(r.Vertex()) != refHash(r) {
			t.Fatalf("Vertex(%q/%q) disagrees with refHash", r.Type, r.Key)
		}
	}
	for _, s := range []string{"", "n", "node-12", "a longer node identity"} {
		h := fnv.New64a()
		h.Write([]byte(s))
		if want, got := h.Sum64(), strHash(s); got != want {
			t.Fatalf("strHash(%q) = %#x, stdlib fnv = %#x", s, got, want)
		}
	}
}

// Regression for the seed's wholesale cache reset: flooding the location
// cache far past its bound must stay bounded, evict cold routes one at a
// time, and keep routes that are actually being hit. Under the old reset
// every resident route — hot or not — vanished at the 128K boundary.
func TestLocCacheClockKeepsHotRoutes(t *testing.T) {
	const bound = 1024 // 16 residents per shard
	s := newShardTestSystem(t, bound, nil)
	// Routes must point at a peer: self-routes are deliberately not cached
	// (the activations map answers for local actors).
	peer := transport.NodeID("peer-node")
	hot := Ref{Type: "counter", Key: "hot-route"}
	s.cachePut(hot, peer)
	for i := 0; i < 50_000; i++ {
		s.cachePut(Ref{Type: "counter", Key: fmt.Sprintf("fill-%d", i)}, peer)
		// Keep the hot route's referenced bit set so every clock pass
		// grants it a second chance.
		if _, ok := s.cacheGet(hot); !ok {
			t.Fatalf("hot route evicted after %d cold inserts", i)
		}
	}
	if n := s.locCacheLen(); n > bound {
		t.Fatalf("cache exceeded bound: %d residents > %d", n, bound)
	}
	if _, ok := s.cacheGet(Ref{Type: "counter", Key: "fill-0"}); ok {
		t.Fatal("earliest cold route survived a 50K-entry flood of its cache")
	}
	if s.locEvicts.Load() == 0 {
		t.Fatal("flood past the bound recorded no evictions")
	}
	// Deleting entries orphans clock slots; inserts must reuse them without
	// growing past the bound.
	for i := 0; i < 1000; i++ {
		s.cacheDel(Ref{Type: "counter", Key: fmt.Sprintf("fill-%d", 49_000+i)})
	}
	for i := 0; i < 5000; i++ {
		s.cachePut(Ref{Type: "counter", Key: fmt.Sprintf("refill-%d", i)}, peer)
		if _, ok := s.cacheGet(hot); !ok {
			t.Fatalf("hot route lost during delete/reinsert churn (refill %d)", i)
		}
	}
	if n := s.locCacheLen(); n > bound {
		t.Fatalf("cache exceeded bound after delete/reinsert churn: %d > %d", n, bound)
	}
}

// The reply-dedup window must stay bounded per stripe and keep honoring
// recorded replies while evicting the oldest entries.
func TestDedupWindowBounded(t *testing.T) {
	s := newShardTestSystem(t, 0, nil)
	const perStripe = dedupWindow / dedupShardCount
	for i := uint64(0); i < 4*dedupWindow; i++ {
		key := dedupKey{from: "peer-a", id: i}
		proceed, prior := s.dedupBegin(key)
		if !proceed || prior != nil {
			t.Fatalf("fresh key %d not admitted (proceed=%v prior=%v)", i, proceed, prior)
		}
		s.dedupResolve(key, []byte("ok"), "")
	}
	total := 0
	for i := range s.dedupShards {
		d := &s.dedupShards[i]
		d.mu.Lock()
		n, live := len(d.m), len(d.order)-d.head
		d.mu.Unlock()
		if n != live {
			t.Fatalf("stripe %d: map %d vs order window %d", i, n, live)
		}
		if n > perStripe {
			t.Fatalf("stripe %d over budget: %d > %d", i, n, perStripe)
		}
		total += n
	}
	if total > dedupWindow {
		t.Fatalf("dedup window unbounded: %d > %d", total, dedupWindow)
	}
	// A recent (resident) key must replay its recorded reply, not re-execute.
	key := dedupKey{from: "peer-a", id: 4*dedupWindow - 1}
	proceed, prior := s.dedupBegin(key)
	if proceed || prior == nil || string(prior.payload) != "ok" {
		t.Fatalf("resident key re-admitted: proceed=%v prior=%+v", proceed, prior)
	}
}

// The pending-reply stripes must route an id to the same stripe for put,
// get, and delete.
func TestPendingStripes(t *testing.T) {
	s := newShardTestSystem(t, 0, nil)
	chans := make(map[uint64]chan *transport.Envelope)
	for i := uint64(0); i < 200; i++ {
		ch := make(chan *transport.Envelope, 1)
		chans[i*2654435761] = ch
		s.pendPut(i*2654435761, ch)
	}
	for id, want := range chans {
		if got := s.pendGet(id); got != want {
			t.Fatalf("pendGet(%d) returned wrong channel", id)
		}
		s.pendDel(id)
		if got := s.pendGet(id); got != nil {
			t.Fatalf("pendGet(%d) alive after delete", id)
		}
	}
}

// Per-shard occupancy gauges and cache counters must reach the Prometheus
// exposition.
func TestShardMetricsExposition(t *testing.T) {
	reg := metrics.NewRegistry()
	s := newShardTestSystem(t, 0, reg)
	for i := 0; i < 32; i++ {
		ref := Ref{Type: "counter", Key: fmt.Sprintf("m-%d", i)}
		if err := s.Call(ref, "Add", 1, nil); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	reg.Write(&buf)
	out := buf.String()
	for _, want := range []string{
		`actop_shard_activations{shard="0"}`,
		"actop_loccache_hits_total",
		"actop_loccache_misses_total",
		"actop_loccache_evictions_total",
	} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	if got := s.activationsLen(); got != 32 {
		t.Fatalf("activationsLen = %d, want 32", got)
	}
}

// Race soak over the sharded state plane: concurrent calls, lookups,
// migrations, deactivations, and cache invalidations on overlapping refs.
// Run under -race (the Makefile battery does); the functional assertion is
// that no increment is lost on the migrate-churned counters and that every
// actor is callable when the dust settles.
func TestConcurrentStatePlaneSoak(t *testing.T) {
	sys := newCluster(t, 3, PlaceRandom)
	const keys = 48
	refs := make([]Ref, keys)
	for i := range refs {
		refs[i] = Ref{Type: "counter", Key: fmt.Sprintf("soak-%d", i)}
		if err := sys[0].Call(refs[i], "Add", 0, nil); err != nil {
			t.Fatal(err)
		}
	}
	ephem := make([]Ref, 16)
	for i := range ephem {
		ephem[i] = Ref{Type: "counter", Key: fmt.Sprintf("ephem-%d", i)}
	}

	stop := make(chan struct{})
	adds := make([]atomic.Int64, keys)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := rng.Intn(keys)
				if err := sys[g%3].Call(refs[k], "Add", 1, nil); err != nil {
					t.Errorf("Add %s: %v", refs[k], err)
					return
				}
				adds[k].Add(1)
			}
		}(g)
	}
	// Migrator: bounce soak actors between nodes. Losing the race to find
	// the host is fine; losing state is not (checked at the end).
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(200))
		for {
			select {
			case <-stop:
				return
			default:
			}
			ref := refs[rng.Intn(keys)]
			for i, s := range sys {
				if s.HostsActor(ref) {
					_ = s.Migrate(ref, sys[(i+1)%3].Node())
					break
				}
			}
		}
	}()
	// Deactivator + caller on ephemeral actors (state resets by design).
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(300))
		for {
			select {
			case <-stop:
				return
			default:
			}
			ref := ephem[rng.Intn(len(ephem))]
			// A call chasing an actor this loop keeps deactivating can
			// exhaust its redirect budget; that's the documented contract
			// under adversarial churn, not a lost update.
			if err := sys[rng.Intn(3)].Call(ref, "Add", 1, nil); err != nil &&
				!strings.Contains(err.Error(), "too many redirects") {
				t.Errorf("ephem Add %s: %v", ref, err)
				return
			}
			for _, s := range sys {
				if s.HostsActor(ref) {
					_ = s.Deactivate(ref)
					break
				}
			}
		}
	}()
	// Cache invalidator: drop routes so lookups re-resolve mid-churn.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(400))
		for {
			select {
			case <-stop:
				return
			default:
			}
			sys[rng.Intn(3)].cacheDel(refs[rng.Intn(keys)])
			time.Sleep(100 * time.Microsecond)
		}
	}()

	time.Sleep(1 * time.Second)
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}
	for k, ref := range refs {
		var out int
		if err := sys[k%3].Call(ref, "Get", nil, &out); err != nil {
			t.Fatalf("post-soak Get %s: %v", ref, err)
		}
		if int64(out) != adds[k].Load() {
			hosts := ""
			for _, s := range sys {
				if s.HostsActor(ref) {
					hosts += " " + string(s.Node())
				}
			}
			var where string
			sys[k%3].Call(ref, "WhereAmI", nil, &where)
			t.Fatalf("%s: %d increments recorded, state says %d (hosts:%s, answered by %s)",
				ref, adds[k].Load(), out, hosts, where)
		}
	}
}
