package actor

import (
	"fmt"
	"sort"
	"strconv"
	"time"

	"actop/internal/flight"
	"actop/internal/hotspot"
	"actop/internal/metrics"
)

// The observability plane (ISSUE 9): the per-actor hot-spot profiler
// (internal/hotspot, fed from the drain loop), the black-box flight
// recorder (internal/flight, fed from every state-transition site), the
// SLO watcher that turns latency regressions into anomaly dumps, and the
// cluster-wide hot-actor assembly over the actop.hotspots control verb.

// obsTick is the SLO watcher's check cadence: one p99 verdict per window
// of this length.
const obsTick = time.Second

// sloMinSamples is the minimum window population before a p99 verdict —
// a handful of calls is noise, not an SLO.
const sloMinSamples = 16

// obsLoop is the background observability ticker: SLO-window checks every
// obsTick (when a target is armed) and profiler cost decay every
// HotspotDecay. Runs on a tracked goroutine, gated on s.done.
func (s *System) obsLoop() {
	tick := obsTick
	if s.sloWin == nil {
		// No SLO watcher: the only periodic duty is decay, so tick at its
		// cadence instead of waking every second for nothing.
		tick = s.cfg.HotspotDecay
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	lastDecay := time.Now()
	for {
		select {
		case <-s.done:
			return
		case <-t.C:
			if s.sloWin != nil {
				s.sloCheck()
			}
			if s.prof != nil && time.Since(lastDecay) >= s.cfg.HotspotDecay {
				s.prof.Decay()
				lastDecay = time.Now()
			}
		}
	}
}

// sloCheck takes one p99 verdict over the rolling window and resets it.
// A breach fires the flight recorder's slo_breach trigger — debounced
// there, so a sustained breach produces one dump per debounce interval,
// not one per violating call or per tick.
func (s *System) sloCheck() {
	h := s.sloWin.Snapshot()
	s.sloWin.Reset()
	if h.Count() < sloMinSamples {
		return
	}
	if p99 := h.Quantile(0.99); p99 > s.cfg.SLOTarget {
		s.flight.Trigger(flight.KindSLOBreach,
			fmt.Sprintf("p99 %v > target %v over %d calls", p99, s.cfg.SLOTarget, h.Count()))
	}
}

// FlightRecorder exposes the node's black-box flight recorder (read-only
// use: Snapshot/Dumps/stat accessors).
func (s *System) FlightRecorder() *flight.Recorder { return s.flight }

// HotspotProfiler exposes the hot-spot sketch (nil when disabled).
func (s *System) HotspotProfiler() *hotspot.Profiler { return s.prof }

// LocalHotspots reports this node's n hottest actors, cost-descending,
// with the Node field stamped for cluster assembly. Nil when the profiler
// is disabled.
func (s *System) LocalHotspots(n int) []hotspot.Entry {
	if s.prof == nil {
		return nil
	}
	top := s.prof.Top(n)
	node := string(s.Node())
	for i := range top {
		top[i].Node = node
	}
	return top
}

// ClusterHotspots assembles the cluster-wide hot-actor table: this node's
// entries plus a control RPC to each peer (the ClusterSpans pattern —
// unreachable peers are skipped, a partial table still ranks). The merged
// table is cost-descending and truncated to n; per-node decayed costs are
// directly comparable because every node runs the same cost formula and
// decay cadence.
func (s *System) ClusterHotspots(n int) []hotspot.Entry {
	out := s.LocalHotspots(n)
	for _, p := range s.peers {
		if p == s.Node() {
			continue
		}
		var remote []hotspot.Entry
		if err := s.controlCall(p, ctlHotspots, n, &remote); err == nil {
			out = append(out, remote...)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cost != out[j].Cost {
			return out[i].Cost > out[j].Cost
		}
		if out[i].Actor != out[j].Actor {
			return out[i].Actor < out[j].Actor
		}
		return out[i].Node < out[j].Node
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// hotspotRanks is how many top entries the registry mirrors as gauges.
const hotspotRanks = 10

// rankLabels pre-renders the rank label values — the fixed-table idiom
// (see shardLabels) that keeps metric label cardinality bounded by
// construction.
var rankLabels = func() [hotspotRanks]string {
	var out [hotspotRanks]string
	for i := range out {
		out[i] = strconv.Itoa(i + 1)
	}
	return out
}()

// registerObsMetrics exposes the observability plane's own health on the
// registry: trace-ring and sampler coverage (dropped spans were silent
// before), flight-recorder activity, and the top-K hot-actor costs —
// all refreshed at scrape time via OnCollect.
func (s *System) registerObsMetrics() {
	reg := s.cfg.Metrics
	spansRec := reg.Counter("actop_trace_spans_recorded_total",
		"spans published to the trace ring, including since-overwritten ones")
	spansOver := reg.Counter("actop_trace_spans_overwritten_total",
		"spans lost to trace-ring wraparound")
	sampAcc := reg.Counter("actop_trace_sampler_accepted_total",
		"root-call sampling decisions that chose to trace")
	sampRej := reg.Counter("actop_trace_sampler_rejected_total",
		"root-call sampling decisions that declined to trace")
	flightRec := reg.Counter("actop_flight_events_total",
		"events recorded by the flight recorder, including overwritten ones")
	flightOver := reg.Counter("actop_flight_events_overwritten_total",
		"flight events lost to ring wraparound")
	flightDumps := reg.Counter("actop_flight_dumps_total",
		"anomaly-triggered black-box dumps captured")
	flightSupp := reg.Counter("actop_flight_triggers_suppressed_total",
		"anomaly triggers debounced away without a dump")
	var hotCost, hotTracked *metrics.GaugeFamily
	if s.prof != nil {
		hotCost = reg.Gauge("actop_hotspot_cost",
			"decayed cost of the rank-N hottest local actor", "rank")
		hotTracked = reg.Gauge("actop_hotspot_tracked",
			"actors resident in the hot-spot sketch")
	}
	reg.OnCollect(func(*metrics.Registry) {
		spansRec.SetTotal(s.spans.Recorded())
		spansOver.SetTotal(s.spans.Overwritten())
		sampAcc.SetTotal(s.sampler.Accepted())
		sampRej.SetTotal(s.sampler.Rejected())
		flightRec.SetTotal(s.flight.Recorded())
		flightOver.SetTotal(s.flight.Overwritten())
		flightDumps.SetTotal(s.flight.DumpsTaken())
		flightSupp.SetTotal(s.flight.Suppressed())
		if s.prof != nil {
			hotTracked.Set(float64(s.prof.Tracked()))
			top := s.prof.Top(hotspotRanks)
			for i := 0; i < hotspotRanks; i++ {
				v := 0.0
				if i < len(top) {
					v = float64(top[i].Cost)
				}
				hotCost.Set(v, rankLabels[i])
			}
		}
	})
}
