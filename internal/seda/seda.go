// Package seda is a real (goroutine-backed) staged event-driven executor:
// each Stage owns a bounded task queue and a dynamically resizable worker
// pool, with the per-event instrumentation (arrival counts, queue lengths,
// wall times) that ActOp's thread controller consumes (§5).
//
// It is the runtime analogue of the simulator's stage model; the actor
// runtime (internal/actor) pipes receive → execute → send through stages
// exactly as Fig. 2 shows.
package seda

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"actop/internal/metrics"
)

// Task is one unit of stage work.
type Task func()

// TimedTask is stage work that wants its own queue-residence time. The
// worker already measures the wait for the stage's estimator histograms, so
// handing it to the task costs nothing extra — this is how the tracing
// plane attributes per-hop queue waits without a second clock read.
type TimedTask func(wait time.Duration)

// ErrQueueFull is returned by Submit when the stage queue is at capacity —
// the backpressure signal (overloaded servers reject, §6.1).
var ErrQueueFull = errors.New("seda: stage queue full")

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("seda: stage closed")

// Stats is a snapshot of a stage's counters since the previous snapshot.
type Stats struct {
	Name      string
	Arrivals  uint64        // tasks submitted in the window
	Processed uint64        // tasks completed in the window
	BusyTime  time.Duration // summed task execution wall time
	QueueWait time.Duration // summed queue residence time
	QueueLen  int           // instantaneous queue length
	Workers   int           // current worker count

	// Wait and Busy are latency-distribution summaries (count, mean, p50,
	// p95, p99, max) of per-task queue-residence and execution wall time in
	// the window — the thread controller's raw measurements (§5.4) and the
	// /debug/actop payload.
	Wait metrics.Summary
	Busy metrics.Summary
}

type queued struct {
	task  Task
	timed TimedTask // set instead of task for SubmitTimed work
	at    time.Time
}

// Stage is one SEDA stage. Create with NewStage; resize with SetWorkers.
type Stage struct {
	name string

	// closeMu serializes Submit against Close: submitters hold it shared
	// (cheap, uncontended on the hot path), Close holds it exclusively
	// while closing the queue channel, so a task can never be sent on a
	// closed channel. The closed flag is atomic so Submit's fast path
	// takes no exclusive lock at all.
	closeMu sync.RWMutex
	closed  atomic.Bool
	queue   chan queued

	mu      sync.Mutex
	stops   []chan struct{} // one per live worker
	workers int

	// window counters (atomics so task paths don't take the lock)
	arrivals  atomic.Uint64
	processed atomic.Uint64
	busyNanos atomic.Int64
	waitNanos atomic.Int64

	// window latency distributions. Histograms record in O(1) but are not
	// concurrency-safe, so workers take obsMu for the two Record calls per
	// completed task; the critical section is a handful of array increments,
	// far below the channel-receive cost already on this path.
	obsMu    sync.Mutex
	waitHist metrics.Histogram
	busyHist metrics.Histogram

	wg sync.WaitGroup
}

// NewStage creates a stage with the given queue capacity and initial worker
// count (minimum 1 each).
func NewStage(name string, queueCap, workers int) *Stage {
	if queueCap < 1 {
		queueCap = 1
	}
	if workers < 1 {
		workers = 1
	}
	s := &Stage{name: name, queue: make(chan queued, queueCap)}
	s.mu.Lock()
	s.grow(workers)
	s.mu.Unlock()
	return s
}

// Name reports the stage name.
func (s *Stage) Name() string { return s.name }

// Submit enqueues a task. It never blocks: a full queue returns
// ErrQueueFull so callers can shed load. The hot path takes only a shared
// lock, so concurrent submitters do not serialize behind each other.
func (s *Stage) Submit(t Task) error {
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	if s.closed.Load() {
		return ErrClosed
	}
	select {
	case s.queue <- queued{task: t, at: time.Now()}:
		s.arrivals.Add(1)
		return nil
	default:
		return ErrQueueFull
	}
}

// SubmitTimed enqueues a task that receives its measured queue wait. Same
// semantics as Submit otherwise.
func (s *Stage) SubmitTimed(t TimedTask) error {
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	if s.closed.Load() {
		return ErrClosed
	}
	select {
	case s.queue <- queued{timed: t, at: time.Now()}:
		s.arrivals.Add(1)
		return nil
	default:
		return ErrQueueFull
	}
}

// worker drains the queue until its stop channel fires.
func (s *Stage) worker(stop chan struct{}) {
	defer s.wg.Done()
	for {
		select {
		case <-stop:
			return
		case q, ok := <-s.queue:
			if !ok {
				return
			}
			start := time.Now()
			wait := start.Sub(q.at)
			s.waitNanos.Add(int64(wait))
			if q.task != nil {
				q.task()
			} else {
				q.timed(wait)
			}
			busy := time.Since(start)
			s.busyNanos.Add(int64(busy))
			s.processed.Add(1)
			s.obsMu.Lock()
			s.waitHist.Record(wait)
			s.busyHist.Record(busy)
			s.obsMu.Unlock()
		}
	}
}

// grow starts n additional workers. Caller holds mu.
func (s *Stage) grow(n int) {
	for i := 0; i < n; i++ {
		stop := make(chan struct{})
		s.stops = append(s.stops, stop)
		s.wg.Add(1)
		go s.worker(stop)
	}
	s.workers += n
}

// SetWorkers resizes the pool to n (minimum 1). Shrinking signals surplus
// workers to exit after their current task.
func (s *Stage) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed.Load() {
		return
	}
	switch {
	case n > s.workers:
		s.grow(n - s.workers)
	case n < s.workers:
		for i := 0; i < s.workers-n; i++ {
			stop := s.stops[len(s.stops)-1]
			s.stops = s.stops[:len(s.stops)-1]
			close(stop)
		}
		s.workers = n
	}
}

// Workers reports the current worker count.
func (s *Stage) Workers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.workers
}

// QueueLen reports the instantaneous queue length.
func (s *Stage) QueueLen() int { return len(s.queue) }

// Snapshot returns the window counters and resets them.
func (s *Stage) Snapshot() Stats {
	s.obsMu.Lock()
	wait := s.waitHist.Summarize()
	busy := s.busyHist.Summarize()
	s.waitHist.Reset()
	s.busyHist.Reset()
	s.obsMu.Unlock()
	return Stats{
		Name:      s.name,
		Arrivals:  s.arrivals.Swap(0),
		Processed: s.processed.Swap(0),
		BusyTime:  time.Duration(s.busyNanos.Swap(0)),
		QueueWait: time.Duration(s.waitNanos.Swap(0)),
		QueueLen:  s.QueueLen(),
		Workers:   s.Workers(),
		Wait:      wait,
		Busy:      busy,
	}
}

// Close stops all workers after the queued tasks drain and rejects further
// submissions. It blocks until workers exit.
func (s *Stage) Close() {
	s.closeMu.Lock()
	if s.closed.Swap(true) {
		s.closeMu.Unlock()
		s.wg.Wait()
		return
	}
	// Release workers blocked on the queue by closing it; drain semantics:
	// workers finish whatever is buffered first. The exclusive lock
	// guarantees no Submit is mid-send on the channel.
	close(s.queue)
	s.closeMu.Unlock()
	s.mu.Lock()
	s.stops = nil // workers exit via the closed queue; stop channels are moot
	s.mu.Unlock()
	s.wg.Wait()
}

// String describes the stage.
func (s *Stage) String() string {
	return fmt.Sprintf("stage(%s workers=%d queued=%d)", s.name, s.Workers(), s.QueueLen())
}
