package seda

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSoakSubmitSnapshotResize is the race battery for the stage/controller
// interface: many goroutines hammer Submit, several more call Snapshot
// (stealing measurement windows, as the live thread controller does), and a
// resizer yo-yos SetWorkers across the full range — all concurrently, under
// -race. Invariants: no deadlock (test timeout), no panic, not a single
// accepted task lost, and the pool converges to the final requested size.
func TestSoakSubmitSnapshotResize(t *testing.T) {
	const (
		producers = 8
		snapshots = 3
	)
	dur := 1500 * time.Millisecond
	if testing.Short() {
		dur = 300 * time.Millisecond
	}

	s := NewStage("soak", 512, 4)
	var (
		accepted atomic.Int64  // Submit returned nil
		executed atomic.Int64  // task body ran
		snapped  atomic.Uint64 // Processed counted via Snapshot windows
		stopAll  = make(chan struct{})
		wg       sync.WaitGroup
	)

	// Producers: spin on ErrQueueFull (backpressure), count acceptances.
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stopAll:
					return
				default:
				}
				err := s.Submit(func() { executed.Add(1) })
				switch err {
				case nil:
					accepted.Add(1)
				case ErrQueueFull:
					runtime.Gosched()
				default:
					t.Errorf("submit: %v", err)
					return
				}
			}
		}()
	}

	// Snapshotters: continuously consume measurement windows, accumulating
	// the Processed counts so none are lost to the resets.
	for sn := 0; sn < snapshots; sn++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stopAll:
					return
				default:
					st := s.Snapshot()
					snapped.Add(st.Processed)
					if st.Workers < 1 {
						t.Errorf("snapshot saw %d workers", st.Workers)
						return
					}
					time.Sleep(time.Millisecond)
				}
			}
		}()
	}

	// Resizer: yo-yo the pool 1..16 while everything else runs.
	wg.Add(1)
	go func() {
		defer wg.Done()
		sizes := []int{1, 16, 2, 12, 1, 8, 3, 16, 1, 6}
		i := 0
		for {
			select {
			case <-stopAll:
				return
			default:
				s.SetWorkers(sizes[i%len(sizes)])
				i++
				time.Sleep(5 * time.Millisecond)
			}
		}
	}()

	time.Sleep(dur)
	close(stopAll)
	wg.Wait()

	// Convergence: the last requested count sticks, immediately in the
	// bookkeeping and (once queued work drains) in live goroutines.
	s.SetWorkers(3)
	if got := s.Workers(); got != 3 {
		t.Fatalf("workers after final SetWorkers = %d, want 3", got)
	}

	// Drain: every accepted task must eventually execute (no lost tasks,
	// no dead pool after the churn).
	deadline := time.After(10 * time.Second)
	for executed.Load() < accepted.Load() {
		select {
		case <-deadline:
			t.Fatalf("drain stuck: accepted=%d executed=%d queued=%d workers=%d",
				accepted.Load(), executed.Load(), s.QueueLen(), s.Workers())
		default:
			time.Sleep(time.Millisecond)
		}
	}
	if executed.Load() != accepted.Load() {
		t.Fatalf("executed %d != accepted %d", executed.Load(), accepted.Load())
	}

	// Window accounting: the Processed counts seen across all snapshots
	// must converge to the executed total (a worker bumps the stage counter
	// moments after the task body runs, so poll briefly).
	totalWindows := snapped.Load()
	for deadline := time.After(2 * time.Second); totalWindows != uint64(executed.Load()); {
		select {
		case <-deadline:
			t.Fatalf("window accounting lost tasks: windows=%d executed=%d", totalWindows, executed.Load())
		default:
			totalWindows += s.Snapshot().Processed
			time.Sleep(time.Millisecond)
		}
	}

	s.Close()
	if err := s.Submit(func() {}); err != ErrClosed {
		t.Fatalf("submit after close: %v", err)
	}
	if accepted.Load() == 0 {
		t.Fatal("soak produced no work")
	}
	t.Logf("soak: accepted=%d windows=%d", accepted.Load(), totalWindows)
}
