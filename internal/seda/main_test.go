package seda

import (
	"os"
	"testing"

	"actop/internal/testutil"
)

// TestMain fails the package if any test leaves a goroutine running —
// stage workers and the thread-allocation controller must all exit when
// their stage (or pipeline) is stopped.
func TestMain(m *testing.M) {
	os.Exit(testutil.VerifyNoLeaks(m.Run))
}
