package seda

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestStageProcessesTasks(t *testing.T) {
	s := NewStage("w", 64, 2)
	defer s.Close()
	var n atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		task := func() { n.Add(1); wg.Done() }
		for {
			err := s.Submit(task)
			if err == nil {
				break
			}
			if err != ErrQueueFull {
				t.Fatal(err)
			}
			time.Sleep(100 * time.Microsecond) // backpressure: retry
		}
	}
	wg.Wait()
	if n.Load() != 100 {
		t.Fatalf("processed %d", n.Load())
	}
}

func TestQueueFullBackpressure(t *testing.T) {
	s := NewStage("w", 1, 1)
	defer s.Close()
	block := make(chan struct{})
	started := make(chan struct{})
	_ = s.Submit(func() { close(started); <-block })
	<-started               // the worker is now occupied
	_ = s.Submit(func() {}) // fills the 1-slot queue
	var sawFull bool
	for i := 0; i < 10; i++ {
		if err := s.Submit(func() {}); err == ErrQueueFull {
			sawFull = true
			break
		}
	}
	close(block)
	if !sawFull {
		t.Fatal("expected ErrQueueFull")
	}
}

func TestSetWorkersGrowShrink(t *testing.T) {
	s := NewStage("w", 64, 1)
	defer s.Close()
	s.SetWorkers(4)
	if s.Workers() != 4 {
		t.Fatalf("workers = %d", s.Workers())
	}
	// With 4 workers, 4 blocking tasks run concurrently.
	var running atomic.Int64
	release := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		_ = s.Submit(func() {
			running.Add(1)
			<-release
			wg.Done()
		})
	}
	deadline := time.After(2 * time.Second)
	for running.Load() < 4 {
		select {
		case <-deadline:
			t.Fatalf("only %d tasks running concurrently", running.Load())
		default:
			time.Sleep(time.Millisecond)
		}
	}
	close(release)
	wg.Wait()
	s.SetWorkers(1)
	if s.Workers() != 1 {
		t.Fatalf("workers after shrink = %d", s.Workers())
	}
	// Still processes tasks after shrink.
	done := make(chan struct{})
	_ = s.Submit(func() { close(done) })
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("stage dead after shrink")
	}
}

func TestSetWorkersFloor(t *testing.T) {
	s := NewStage("w", 8, 2)
	defer s.Close()
	s.SetWorkers(0)
	if s.Workers() != 1 {
		t.Fatalf("workers = %d, want floor 1", s.Workers())
	}
}

func TestSnapshotCounters(t *testing.T) {
	s := NewStage("w", 64, 2)
	defer s.Close()
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		_ = s.Submit(func() { time.Sleep(100 * time.Microsecond); wg.Done() })
	}
	wg.Wait()
	st := s.Snapshot()
	if st.Arrivals != 50 || st.Processed != 50 {
		t.Fatalf("arrivals/processed = %d/%d", st.Arrivals, st.Processed)
	}
	if st.BusyTime < 4*time.Millisecond {
		t.Fatalf("busy time %v implausibly low", st.BusyTime)
	}
	if st.Workers != 2 || st.Name != "w" {
		t.Fatalf("snapshot = %+v", st)
	}
	// Window semantics: next snapshot is empty.
	st2 := s.Snapshot()
	if st2.Arrivals != 0 || st2.Processed != 0 {
		t.Fatalf("window not reset: %+v", st2)
	}
}

func TestCloseDrainsAndRejects(t *testing.T) {
	s := NewStage("w", 64, 2)
	var n atomic.Int64
	for i := 0; i < 20; i++ {
		_ = s.Submit(func() { n.Add(1) })
	}
	s.Close()
	if n.Load() != 20 {
		t.Fatalf("close dropped tasks: %d/20", n.Load())
	}
	if err := s.Submit(func() {}); err != ErrClosed {
		t.Fatalf("submit after close: %v", err)
	}
	s.Close() // idempotent
}

func TestStressConcurrentSubmitResize(t *testing.T) {
	s := NewStage("w", 1024, 2)
	defer s.Close()
	var done atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				for s.Submit(func() { done.Add(1) }) == ErrQueueFull {
					time.Sleep(10 * time.Microsecond)
				}
			}
		}()
	}
	go func() {
		for i := 0; i < 50; i++ {
			s.SetWorkers(1 + i%8)
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
	deadline := time.After(5 * time.Second)
	for done.Load() < 2000 {
		select {
		case <-deadline:
			t.Fatalf("only %d/2000 done", done.Load())
		default:
			time.Sleep(time.Millisecond)
		}
	}
}

func TestSubmitTimedReportsQueueWait(t *testing.T) {
	s := NewStage("w", 64, 1)
	defer s.Close()
	// Park the single worker so the timed task measurably queues.
	release := make(chan struct{})
	if err := s.Submit(func() { <-release }); err != nil {
		t.Fatal(err)
	}
	done := make(chan time.Duration, 1)
	if err := s.SubmitTimed(func(wait time.Duration) { done <- wait }); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	close(release)
	select {
	case wait := <-done:
		if wait < 15*time.Millisecond {
			t.Fatalf("queue wait = %v, want ≥ ~20ms", wait)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("timed task never ran")
	}
	// The wait feeds the same window histograms Submit uses.
	if st := s.Snapshot(); st.Processed != 2 || st.Wait.Max < 15*time.Millisecond {
		t.Fatalf("snapshot = %+v", st)
	}
}

func TestSubmitTimedClosed(t *testing.T) {
	s := NewStage("w", 4, 1)
	s.Close()
	if err := s.SubmitTimed(func(time.Duration) {}); err != ErrClosed {
		t.Fatalf("submit after close: %v", err)
	}
}
