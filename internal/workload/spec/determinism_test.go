package spec

import (
	"reflect"
	"testing"
)

// TestScheduleDeterminism: the compiled schedule is a pure function of the
// spec — two streams over the same spec emit identical Draw sequences, and
// a different seed emits a different one.
func TestScheduleDeterminism(t *testing.T) {
	for _, sc := range Scenarios(1) {
		sp := sc.Spec
		s1 := NewStream(&sp).Schedule()
		s2 := NewStream(&sp).Schedule()
		if !reflect.DeepEqual(s1, s2) {
			t.Errorf("%s: same seed produced different schedules", sp.Name)
		}
		reseeded := sp
		reseeded.Seed = sp.Seed + 1
		s3 := NewStream(&reseeded).Schedule()
		if reflect.DeepEqual(s1, s3) {
			t.Errorf("%s: different seeds produced identical schedules", sp.Name)
		}
	}
}

// TestTopologyDeterminism: compiling a spec twice yields bit-identical
// adjacency.
func TestTopologyDeterminism(t *testing.T) {
	sp := Social(1).Spec
	t1, err := BuildTopology(&sp)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := BuildTopology(&sp)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(t1.Adj, t2.Adj) {
		t.Fatal("same seed produced different topologies")
	}
}

// TestDESTraceDeterminism is the headline seed guarantee: two DES runs of
// the same spec produce the identical completion event trace — every
// completion at the same virtual nanosecond with the same request id — and
// fire the identical number of simulator events.
func TestDESTraceDeterminism(t *testing.T) {
	for _, name := range []string{"presence", "matchmaking"} {
		sc, _ := ScenarioByName(name, 0.5)
		r1, err := RunDES(&sc.Spec, DESOptions{RecordTrace: true})
		if err != nil {
			t.Fatal(err)
		}
		r2, err := RunDES(&sc.Spec, DESOptions{RecordTrace: true})
		if err != nil {
			t.Fatal(err)
		}
		if r1.Fired != r2.Fired {
			t.Errorf("%s: event counts differ: %d vs %d", name, r1.Fired, r2.Fired)
		}
		if len(r1.Trace) == 0 {
			t.Fatalf("%s: empty trace", name)
		}
		if !reflect.DeepEqual(r1.Trace, r2.Trace) {
			t.Errorf("%s: same seed produced different DES event traces", name)
		}
		if !reflect.DeepEqual(r1.Result, r2.Result) {
			t.Errorf("%s: same seed produced different results", name)
		}
	}
}
