package spec

import "time"

// The built-in scenario library. Each scenario is a Spec plus its stated
// conformance Tolerance; together the five cover the paper's two Halo
// workloads and three further shapes the runtime must handle — write
// amplification, high fan-in ingest, and short-lived actor swarms.

// Scenario pairs a workload spec with the conformance bar it must meet.
type Scenario struct {
	Spec Spec
	Tol  Tolerance
}

// defaultTol is the conformance bar shared by the built-in scenarios:
// every submitted op completes (drained open-loop run), realized
// throughput within 25% across backends (covers the real run's drain tail
// and wall-clock jitter), and message amplification — the structural
// fingerprint of the workload — within 10%.
var defaultTol = Tolerance{Throughput: 0.25, Amplification: 0.10, MinCompletion: 0.99}

// pop scales a population, keeping at least 2 actors so block/mod
// assignments stay meaningful.
func pop(n int, scale float64) int {
	v := int(float64(n) * scale)
	if v < 2 {
		v = 2
	}
	return v
}

// Presence is the paper's Halo 4 presence workload as a spec: consoles
// grouped into game sessions; a status lookup walks console → game →
// every member's presence record and gathers the replies (the §2
// fan-out/fan-in tree), while games churn as sessions end and restart.
// Presence records are a separate leaf kind so the status tree descends a
// kind DAG (console → game → presence), as Validate requires.
func Presence(scale float64) Scenario {
	consoles := pop(64, scale)
	games := pop(16, scale)
	return Scenario{
		Spec: Spec{
			Name:        "presence",
			Description: "Halo-style presence: console→game→roster gather tree with session churn",
			Kinds: []Kind{
				{Name: "console", Population: consoles, StateBytes: 256},
				{Name: "game", Population: games, StateBytes: 1024, ChurnRate: 0.1},
				{Name: "presence", Population: consoles, StateBytes: 128},
			},
			Links: []Link{
				{Name: "mygame", From: "console", To: "game", Assign: AssignBlock},
				{Name: "enroll", From: "presence", To: "game", Assign: AssignBlock},
				{Name: "roster", From: "game", To: "presence", Assign: AssignInverse, InverseOf: "enroll"},
			},
			Ops: []Op{
				{
					Name: "status", Kind: "console", Weight: 1, PayloadBytes: 128,
					Steps: []Step{{Link: "mygame", Gather: true, Then: []Step{{Link: "roster", Gather: true}}}},
				},
				{Name: "touch", Kind: "console", Weight: 3, PayloadBytes: 64},
			},
			Arrival:  Arrival{Process: ArrivalPoisson, Rate: 150 * scale},
			Duration: 3 * time.Second,
			Seed:     101,
		},
		Tol: defaultTol,
	}
}

// Heartbeat is the paper's Halo 4 heartbeat workload: a flat population of
// session actors each absorbing periodic single-hop state updates.
func Heartbeat(scale float64) Scenario {
	return Scenario{
		Spec: Spec{
			Name:        "heartbeat",
			Description: "Halo-style heartbeats: single-hop updates over a flat session population",
			Kinds: []Kind{
				{Name: "session", Population: pop(128, scale), StateBytes: 512},
			},
			Ops: []Op{
				{Name: "beat", Kind: "session", Weight: 1, PayloadBytes: 64},
			},
			Arrival:  Arrival{Process: ArrivalPoisson, Rate: 400 * scale},
			Duration: 2 * time.Second,
			Seed:     102,
		},
		Tol: defaultTol,
	}
}

// Social is the social-graph fan-out scenario: a post fans out to the
// author's Zipf-degreed follower feeds (write amplification), while reads
// hit a Zipf-popular slice of the feeds directly. Feeds are a leaf kind —
// user → feed is the acyclic shape real timeline delivery has, and the
// kind DAG rule requires it.
func Social(scale float64) Scenario {
	users := pop(100, scale)
	return Scenario{
		Spec: Spec{
			Name:        "social",
			Description: "Social-graph fanout: Zipf follower degrees amplify writes into feeds; Zipf-hot reads",
			Kinds: []Kind{
				{Name: "user", Population: users, StateBytes: 2048},
				{Name: "feed", Population: users, StateBytes: 4096},
			},
			Links: []Link{
				{Name: "followers", From: "user", To: "feed", Assign: AssignRandom, Degree: Zipf(1, 40, 1.3)},
			},
			Ops: []Op{
				{
					Name: "post", Kind: "user", Weight: 1, PayloadBytes: 512,
					Pop:   Pop{Zipf: true, S: 1.5},
					Steps: []Step{{Link: "followers"}},
				},
				{Name: "read", Kind: "feed", Weight: 4, PayloadBytes: 64, Pop: Pop{Zipf: true, S: 1.5}},
			},
			Arrival:  Arrival{Process: ArrivalPoisson, Rate: 120 * scale},
			Duration: 3 * time.Second,
			Seed:     103,
		},
		Tol: defaultTol,
	}
}

// IoT is the telemetry-ingest scenario: a large device population funnels
// tiny readings into a few aggregators (high fan-in), under a compressed
// diurnal rate cycle.
func IoT(scale float64) Scenario {
	devices := pop(200, scale)
	aggs := pop(8, scale)
	return Scenario{
		Spec: Spec{
			Name:        "iot",
			Description: "IoT telemetry ingest: many devices, few aggregators, tiny payloads, diurnal rate",
			Kinds: []Kind{
				{Name: "device", Population: devices, StateBytes: 64},
				{Name: "aggregator", Population: aggs, StateBytes: 8192},
			},
			Links: []Link{
				{Name: "uplink", From: "device", To: "aggregator", Assign: AssignMod},
			},
			Ops: []Op{
				{
					Name: "telemetry", Kind: "device", Weight: 1, PayloadBytes: 16,
					Steps: []Step{{Link: "uplink", Gather: true}},
				},
			},
			Arrival: Arrival{
				Process: ArrivalDiurnal, Rate: 500 * scale,
				Period: 2 * time.Second, Amplitude: 0.8,
			},
			Duration: 3 * time.Second,
			Seed:     104,
		},
		Tol: defaultTol,
	}
}

// Matchmaking is the lobby-swarm scenario: bursty join traffic fills
// short-lived lobby actors to capacity; full lobbies play out a bounded
// lifetime and retire. The no-lost-members invariant audits the swarm.
func Matchmaking(scale float64) Scenario {
	return Scenario{
		Spec: Spec{
			Name:        "matchmaking",
			Description: "Matchmaking lobbies: bursty joins fill short-lived capacity-8 actor swarms",
			Kinds: []Kind{
				{Name: "lobby", Capacity: 8, LifetimeMin: time.Second, LifetimeMax: 2 * time.Second},
				{Name: "profile", Population: pop(64, scale), StateBytes: 512},
			},
			Ops: []Op{
				{Name: "join", Kind: "lobby", Weight: 4, PayloadBytes: 128, Join: true},
				{Name: "stats", Kind: "profile", Weight: 1, PayloadBytes: 64},
			},
			Arrival: Arrival{
				Process: ArrivalBursty, Rate: 80 * scale,
				BurstFactor: 5, BurstOn: 300 * time.Millisecond, BurstOff: 700 * time.Millisecond,
			},
			Duration: 3 * time.Second,
			Seed:     105,
		},
		Tol: defaultTol,
	}
}

// Scenarios returns the built-in scenario set in its canonical order,
// sized by scale (populations and arrival rates scale together, holding
// per-actor load roughly constant).
func Scenarios(scale float64) []Scenario {
	return []Scenario{
		Presence(scale),
		Heartbeat(scale),
		Social(scale),
		IoT(scale),
		Matchmaking(scale),
	}
}

// ScenarioByName looks a built-in scenario up; ok is false for unknown
// names.
func ScenarioByName(name string, scale float64) (Scenario, bool) {
	for _, sc := range Scenarios(scale) {
		if sc.Spec.Name == name {
			return sc, true
		}
	}
	return Scenario{}, false
}
