package spec

import (
	"testing"
	"time"
)

// TestDESScenarioInvariants runs every built-in scenario on the simulator
// and audits the per-scenario safety properties: nothing lost, effects
// exactly once, fan-out legs conserved, lobby membership intact.
func TestDESScenarioInvariants(t *testing.T) {
	for _, sc := range Scenarios(1) {
		sc := sc
		t.Run(sc.Spec.Name, func(t *testing.T) {
			run, err := RunDES(&sc.Spec, DESOptions{})
			if err != nil {
				t.Fatal(err)
			}
			r := &run.Result
			if r.Submitted == 0 {
				t.Fatal("nothing submitted")
			}
			for _, inv := range r.CheckInvariants(&sc.Spec) {
				t.Error(inv)
			}
			if frac := float64(r.Completed) / float64(r.Submitted); frac < sc.Tol.MinCompletion {
				t.Errorf("completion %.4f below scenario floor %.3f", frac, sc.Tol.MinCompletion)
			}
			if r.Completed > 0 {
				p50, p99 := r.Latency.Quantile(0.5), r.Latency.Quantile(0.99)
				if p50 <= 0 || p99 < p50 {
					t.Errorf("incoherent latency quantiles p50=%v p99=%v", p50, p99)
				}
			}
		})
	}
}

// legsFor walks an op's call tree over the compiled topology and counts
// the exact calls one execution from fromSlot issues.
func legsFor(topo *Topology, sp *Spec, fromSlot int, steps []Step) uint64 {
	var n uint64
	for i := range steps {
		st := &steps[i]
		li := sp.linkIndex(st.Link)
		for _, tgt := range topo.Targets(li, fromSlot) {
			n += 1 + legsFor(topo, sp, int(tgt), st.Then)
		}
	}
	return n
}

// TestDESAmplificationMatchesTopology replays the schedule against the
// compiled topology and predicts the exact number of fan-out legs the run
// must issue — an independent derivation the simulator's realized count
// has to match call for call (churn preserves topology slots, so the
// prediction survives session turnover).
func TestDESAmplificationMatchesTopology(t *testing.T) {
	for _, name := range []string{"presence", "social", "iot"} {
		sc, _ := ScenarioByName(name, 1)
		sp := sc.Spec
		topo, err := BuildTopology(&sp)
		if err != nil {
			t.Fatal(err)
		}
		var want uint64
		for _, d := range NewStream(&sp).Schedule() {
			if d.Ev != EvOp {
				continue
			}
			want += legsFor(topo, &sp, d.Target, sp.Ops[d.Op].Steps)
		}
		run, err := RunDES(&sp, DESOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if got := run.Result.LegsSent; got != want {
			t.Errorf("%s: simulator issued %d fan-out legs, schedule replay predicts %d", name, got, want)
		}
	}
}

// TestDESChurnExercised makes sure the presence scenario actually churns
// sessions (otherwise its invariants say nothing about churn safety).
func TestDESChurnExercised(t *testing.T) {
	sc, _ := ScenarioByName("presence", 1)
	run, err := RunDES(&sc.Spec, DESOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if run.Result.Churned == 0 {
		t.Error("presence run churned nothing; raise ChurnRate or duration")
	}
}

// TestDESSwarmLifecycle checks matchmaking's swarm accounting: lobbies are
// created on demand, fill to capacity, and the actors' own member counts
// add up to the routed joins even as lobbies retire mid-run.
func TestDESSwarmLifecycle(t *testing.T) {
	sc, _ := ScenarioByName("matchmaking", 1)
	run, err := RunDES(&sc.Spec, DESOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r := &run.Result
	if r.LobbiesUsed < 2 {
		t.Fatalf("only %d lobbies used; swarm not exercised", r.LobbiesUsed)
	}
	if r.JoinsRouted == 0 || r.LobbyMembers != r.JoinsRouted {
		t.Fatalf("lobby members %d != joins routed %d", r.LobbyMembers, r.JoinsRouted)
	}
	cap := uint64(sc.Spec.Kinds[sc.Spec.kindIndex("lobby")].Capacity)
	if full := r.JoinsRouted / cap; uint64(r.LobbiesUsed) < full {
		t.Fatalf("%d lobbies for %d joins at capacity %d", r.LobbiesUsed, r.JoinsRouted, cap)
	}
}

// TestCompareSelf feeds a DES result against itself through the
// conformance comparator: a backend always conforms to itself, and the
// helper must flag fabricated divergence.
func TestCompareSelf(t *testing.T) {
	sc, _ := ScenarioByName("heartbeat", 1)
	run, err := RunDES(&sc.Spec, DESOptions{})
	if err != nil {
		t.Fatal(err)
	}
	a := run.Result
	b := run.Result
	b.Backend = "real"
	if errs := Compare(&sc.Spec, &a, &b, sc.Tol); len(errs) != 0 {
		t.Fatalf("self-comparison failed: %v", errs)
	}
	// Halve the clone's completions: throughput and completion must trip.
	b.Completed /= 2
	b.OpsExecuted /= 2
	if errs := Compare(&sc.Spec, &a, &b, sc.Tol); len(errs) == 0 {
		t.Fatal("halved throughput passed conformance")
	}
}

func durations(ms ...int) []time.Duration {
	out := make([]time.Duration, len(ms))
	for i, m := range ms {
		out[i] = time.Duration(m) * time.Millisecond
	}
	return out
}

func TestRankCheck(t *testing.T) {
	names := []string{"light", "heavy"}
	// DES separates heavy ≥ 3× light; real agreeing passes, disagreeing fails.
	desMedians := durations(1, 5)
	okReal := durations(2, 3)
	badReal := durations(3, 2)
	if errs := RankCheck(names, desMedians, okReal, 3); len(errs) != 0 {
		t.Fatalf("agreeing ranks flagged: %v", errs)
	}
	if errs := RankCheck(names, desMedians, badReal, 3); len(errs) == 0 {
		t.Fatal("inverted ranks passed")
	}
	// Pairs the DES does not separate are never checked.
	if errs := RankCheck(names, durations(1, 2), badReal, 3); len(errs) != 0 {
		t.Fatalf("unseparated pair flagged: %v", errs)
	}
}
