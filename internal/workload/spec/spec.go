// Package spec is a declarative workload specification language for the
// ActOp benchmark suite, plus the compiler that turns one spec into
// identical load against two very different backends:
//
//   - the discrete-event simulator (internal/sim), where a run is
//     bit-reproducible from the seed, and
//   - the real actor runtime (internal/actor), driven by internal/loadgen
//     from the *same* deterministic schedule, so runs are statistically
//     reproducible.
//
// A Spec names actor kinds (population, state size, churn, optional
// short-lived "swarm" lifecycle), topology links between kinds (fixed,
// uniform or Zipf out-degrees; modular/block/inverse assignment), client
// operations (target-kind popularity incl. Zipf, payload size, a fan-out
// call tree along links) and an arrival process (Poisson, bursty on-off,
// or diurnal). Five built-in scenarios (scenarios.go) cover the paper's
// two Halo workloads plus social-graph fanout, IoT telemetry ingest and
// matchmaking lobbies.
//
// The point of the shared spec is the conformance layer (conformance.go):
// for every scenario, the DES run and the real-runtime run must agree on
// completion, throughput and message amplification within a stated
// tolerance, and each must satisfy the scenario's invariants (value
// conservation, exactly-once effects, no lost lobby members under churn).
//
// This package is covered by actop-lint's simdet analyzer: it must not
// read the wall clock or the process-global rand source, so the same code
// paths stay usable inside the DES. Everything random derives from
// Spec.Seed.
package spec

import (
	"fmt"
	"time"
)

// DistKind selects the shape of a Dist.
type DistKind uint8

// Distribution shapes.
const (
	// DistFixed always yields A.
	DistFixed DistKind = iota
	// DistUniform yields uniformly from [A, B].
	DistUniform
	// DistZipf yields A + Zipf(S) over [0, B-A], skewed toward A.
	DistZipf
)

// Dist is a small discrete distribution over non-negative integers, used
// for link out-degrees.
type Dist struct {
	Kind DistKind
	A, B int
	// S is the Zipf exponent (must be > 1 when Kind == DistZipf).
	S float64
}

// Fixed is shorthand for a constant distribution.
func Fixed(n int) Dist { return Dist{Kind: DistFixed, A: n} }

// Uniform is shorthand for a uniform [lo, hi] distribution.
func Uniform(lo, hi int) Dist { return Dist{Kind: DistUniform, A: lo, B: hi} }

// Zipf is shorthand for a Zipf-skewed distribution on [lo, hi].
func Zipf(lo, hi int, s float64) Dist { return Dist{Kind: DistZipf, A: lo, B: hi, S: s} }

// Pop selects how an operation picks its target among a kind's
// population: uniform by default, Zipf-skewed toward low slots when
// Zipf is set (slot 0 is the hottest key).
type Pop struct {
	Zipf bool
	S    float64
}

// ArrivalKind selects the arrival process of client operations.
type ArrivalKind uint8

// Arrival processes.
const (
	// ArrivalPoisson is a homogeneous Poisson process at Rate.
	ArrivalPoisson ArrivalKind = iota
	// ArrivalBursty is an on-off modulated Poisson process: Rate in the
	// off state, Rate×BurstFactor during exponentially distributed bursts.
	ArrivalBursty
	// ArrivalDiurnal modulates Rate sinusoidally with the given Period and
	// Amplitude — a compressed day/night cycle.
	ArrivalDiurnal
)

// Arrival describes the client-operation arrival process.
type Arrival struct {
	Process ArrivalKind
	// Rate is the base arrival rate in operations per second.
	Rate float64

	// BurstFactor multiplies Rate while a burst is on (ArrivalBursty).
	BurstFactor float64
	// BurstOn/BurstOff are the mean burst / quiet durations, each
	// exponentially distributed (ArrivalBursty).
	BurstOn, BurstOff time.Duration

	// Period and Amplitude (0..1) shape the sinusoidal rate modulation
	// (ArrivalDiurnal): rate(t) = Rate × (1 + Amplitude·sin(2πt/Period)).
	Period    time.Duration
	Amplitude float64
}

// Kind declares one actor kind.
type Kind struct {
	Name string
	// Population is the number of live actors of this kind at start.
	// Swarm kinds (Capacity > 0) start empty and grow on demand.
	Population int
	// StateBytes sizes each actor's resident state payload.
	StateBytes int

	// ChurnRate is the per-second fraction of the population replaced:
	// a churn event retires one uniformly chosen actor and re-creates it
	// (fresh state, same topology slot). 0 disables churn.
	ChurnRate float64

	// Capacity > 0 marks a swarm kind (matchmaking lobbies): actors are
	// created on demand by Join operations, fill to Capacity members, and
	// retire Lifetime later — short-lived actor swarms under bursty
	// creation.
	Capacity int
	// LifetimeMin/Max bound the uniformly distributed post-fill lifetime
	// of a swarm actor.
	LifetimeMin, LifetimeMax time.Duration
}

// AssignKind selects how a link's adjacency is built.
type AssignKind uint8

// Adjacency assignment modes.
const (
	// AssignRandom samples Degree targets uniformly without replacement.
	AssignRandom AssignKind = iota
	// AssignMod links from-actor i to to-actor i mod |To| (Degree 1) —
	// the many-to-few fan-in assignment (devices → aggregators).
	AssignMod
	// AssignBlock links from-actor i to to-actor i / ⌈|From|/|To|⌉
	// (Degree 1) — contiguous groups (players → their game).
	AssignBlock
	// AssignInverse transposes another link's adjacency (games → their
	// members); Degree is ignored.
	AssignInverse
)

// Link declares a topology edge set between two kinds. Adjacency is built
// deterministically from the spec seed at compile time and is identical in
// both backends.
type Link struct {
	Name     string
	From, To string
	// Degree draws each from-actor's out-degree (AssignRandom).
	Degree Dist
	Assign AssignKind
	// InverseOf names the link to transpose (AssignInverse).
	InverseOf string
}

// Step is one hop of an operation's fan-out call tree: the current actor
// calls every neighbor along Link; each callee then executes Then. Gather
// marks the hop as acknowledged (fan-in) in the DES model; in the real
// runtime every call is a synchronous request/reply, so Gather only
// affects how the DES models reply traffic — the call count (the
// amplification the conformance layer compares) is identical either way.
//
// Validate requires the kind-level graph of all step links to be acyclic.
// On the real runtime every hop is a synchronous turn-holding call, so a
// kind cycle lets two activations wait on each other (player A blocked on
// its game while the game fans out to player B, itself blocked calling
// the game) and deadlock until timeout. With a kind DAG every wait-for
// chain strictly descends, so deadlock is impossible by construction; the
// DES would not hang either way, which is exactly the kind of
// model/reality divergence the conformance layer exists to rule out.
type Step struct {
	Link   string
	Gather bool
	Then   []Step
}

// Op declares one client-initiated operation.
type Op struct {
	Name string
	// Kind is the target actor kind.
	Kind string
	// Weight is the operation's share of the arrival mix.
	Weight int
	// Pop selects the target among the kind's population (ignored for
	// Join ops).
	Pop Pop
	// PayloadBytes sizes the request payload carried on every hop.
	PayloadBytes int
	// Steps is the fan-out call tree the target executes.
	Steps []Step
	// Join routes the operation to the kind's currently filling swarm
	// actor instead of a population slot (the kind must have Capacity>0).
	Join bool
}

// Spec is a complete declarative workload.
type Spec struct {
	Name        string
	Description string

	Kinds []Kind
	Links []Link
	Ops   []Op

	Arrival Arrival
	// Duration is the schedule horizon: operations arrive in [0, Duration).
	Duration time.Duration

	// Seed drives every random choice — topology, arrivals, popularity,
	// churn, lifetimes. DES runs with equal seeds are bit-identical;
	// real-runtime runs replay the identical schedule.
	Seed int64
}

// Tolerance states how closely the two backends must agree for a spec;
// it is part of the scenario definition so the conformance bar is explicit.
type Tolerance struct {
	// Throughput is the allowed relative difference in completed
	// operations per second between DES and real runs.
	Throughput float64
	// Amplification is the allowed relative difference in actor-to-actor
	// calls per completed operation.
	Amplification float64
	// MinCompletion is the minimum completed/submitted fraction each
	// backend must reach on its own.
	MinCompletion float64
}

// kindIndex returns the position of the named kind, or -1.
func (s *Spec) kindIndex(name string) int {
	for i := range s.Kinds {
		if s.Kinds[i].Name == name {
			return i
		}
	}
	return -1
}

// linkIndex returns the position of the named link, or -1.
func (s *Spec) linkIndex(name string) int {
	for i := range s.Links {
		if s.Links[i].Name == name {
			return i
		}
	}
	return -1
}

// Validate checks the spec's internal references and parameter ranges.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("spec: missing name")
	}
	if s.Duration <= 0 {
		return fmt.Errorf("spec %s: duration must be positive", s.Name)
	}
	if s.Arrival.Rate <= 0 {
		return fmt.Errorf("spec %s: arrival rate must be positive", s.Name)
	}
	switch s.Arrival.Process {
	case ArrivalBursty:
		if s.Arrival.BurstFactor < 1 || s.Arrival.BurstOn <= 0 || s.Arrival.BurstOff <= 0 {
			return fmt.Errorf("spec %s: bursty arrivals need BurstFactor ≥ 1 and positive on/off durations", s.Name)
		}
	case ArrivalDiurnal:
		if s.Arrival.Period <= 0 || s.Arrival.Amplitude < 0 || s.Arrival.Amplitude > 1 {
			return fmt.Errorf("spec %s: diurnal arrivals need a positive period and amplitude in [0,1]", s.Name)
		}
	}
	if len(s.Kinds) == 0 {
		return fmt.Errorf("spec %s: no actor kinds", s.Name)
	}
	for i := range s.Kinds {
		k := &s.Kinds[i]
		if k.Name == "" {
			return fmt.Errorf("spec %s: kind %d has no name", s.Name, i)
		}
		for j := 0; j < i; j++ {
			if s.Kinds[j].Name == k.Name {
				return fmt.Errorf("spec %s: duplicate kind %q", s.Name, k.Name)
			}
		}
		if k.Capacity > 0 {
			if k.Population != 0 {
				return fmt.Errorf("spec %s: swarm kind %q must start with population 0", s.Name, k.Name)
			}
			if k.LifetimeMin <= 0 || k.LifetimeMax < k.LifetimeMin {
				return fmt.Errorf("spec %s: swarm kind %q needs 0 < LifetimeMin ≤ LifetimeMax", s.Name, k.Name)
			}
		} else if k.Population <= 0 {
			return fmt.Errorf("spec %s: kind %q needs a positive population", s.Name, k.Name)
		}
		if k.ChurnRate < 0 {
			return fmt.Errorf("spec %s: kind %q has negative churn", s.Name, k.Name)
		}
		if k.ChurnRate > 0 && k.Capacity > 0 {
			return fmt.Errorf("spec %s: swarm kind %q cannot also declare churn (swarm turnover is the churn)", s.Name, k.Name)
		}
	}
	for i := range s.Links {
		l := &s.Links[i]
		if l.Name == "" {
			return fmt.Errorf("spec %s: link %d has no name", s.Name, i)
		}
		for j := 0; j < i; j++ {
			if s.Links[j].Name == l.Name {
				return fmt.Errorf("spec %s: duplicate link %q", s.Name, l.Name)
			}
		}
		fi, ti := s.kindIndex(l.From), s.kindIndex(l.To)
		if fi < 0 || ti < 0 {
			return fmt.Errorf("spec %s: link %q references unknown kind", s.Name, l.Name)
		}
		if s.Kinds[fi].Capacity > 0 || s.Kinds[ti].Capacity > 0 {
			return fmt.Errorf("spec %s: link %q touches a swarm kind; swarm membership is dynamic", s.Name, l.Name)
		}
		switch l.Assign {
		case AssignRandom:
			if l.Degree.Kind == DistZipf && l.Degree.S <= 1 {
				return fmt.Errorf("spec %s: link %q Zipf degree needs exponent > 1", s.Name, l.Name)
			}
			if l.Degree.A < 0 || (l.Degree.Kind != DistFixed && l.Degree.B < l.Degree.A) {
				return fmt.Errorf("spec %s: link %q has an invalid degree range", s.Name, l.Name)
			}
		case AssignInverse:
			j := s.linkIndex(l.InverseOf)
			if j < 0 || j == i {
				return fmt.Errorf("spec %s: link %q inverts unknown link %q", s.Name, l.Name, l.InverseOf)
			}
			inv := &s.Links[j]
			if inv.Assign == AssignInverse {
				return fmt.Errorf("spec %s: link %q inverts another inverse link", s.Name, l.Name)
			}
			if inv.From != l.To || inv.To != l.From {
				return fmt.Errorf("spec %s: link %q must transpose %q's endpoints", s.Name, l.Name, l.InverseOf)
			}
		}
	}
	if len(s.Ops) == 0 {
		return fmt.Errorf("spec %s: no operations", s.Name)
	}
	totalWeight := 0
	for i := range s.Ops {
		op := &s.Ops[i]
		if op.Name == "" {
			return fmt.Errorf("spec %s: op %d has no name", s.Name, i)
		}
		if op.Weight <= 0 {
			return fmt.Errorf("spec %s: op %q needs a positive weight", s.Name, op.Name)
		}
		totalWeight += op.Weight
		ki := s.kindIndex(op.Kind)
		if ki < 0 {
			return fmt.Errorf("spec %s: op %q targets unknown kind %q", s.Name, op.Name, op.Kind)
		}
		if op.Join != (s.Kinds[ki].Capacity > 0) {
			return fmt.Errorf("spec %s: op %q: Join ops and swarm kinds must pair up", s.Name, op.Name)
		}
		if op.Pop.Zipf && op.Pop.S <= 1 {
			return fmt.Errorf("spec %s: op %q Zipf popularity needs exponent > 1", s.Name, op.Name)
		}
		if err := s.validateSteps(op.Name, op.Kind, op.Steps, 0); err != nil {
			return err
		}
	}
	if totalWeight <= 0 {
		return fmt.Errorf("spec %s: zero total op weight", s.Name)
	}
	if cyc := s.kindCycle(); cyc != "" {
		return fmt.Errorf("spec %s: step links form a kind cycle (%s); synchronous turns would deadlock on the real runtime", s.Name, cyc)
	}
	return nil
}

// kindCycle looks for a cycle in the kind-level graph induced by every
// link any op's steps traverse, returning a printable witness ("" = DAG).
func (s *Spec) kindCycle() string {
	edges := make([][]int, len(s.Kinds))
	var collect func(fromKind int, steps []Step)
	collect = func(fromKind int, steps []Step) {
		for i := range steps {
			li := s.linkIndex(steps[i].Link)
			if li < 0 {
				continue
			}
			to := s.kindIndex(s.Links[li].To)
			edges[fromKind] = append(edges[fromKind], to)
			collect(to, steps[i].Then)
		}
	}
	for i := range s.Ops {
		collect(s.kindIndex(s.Ops[i].Kind), s.Ops[i].Steps)
	}
	// DFS three-coloring; a back edge names the cycle.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, len(s.Kinds))
	var walk func(k int) string
	walk = func(k int) string {
		color[k] = gray
		for _, to := range edges[k] {
			switch color[to] {
			case gray:
				return s.Kinds[k].Name + " → " + s.Kinds[to].Name
			case white:
				if w := walk(to); w != "" {
					return w
				}
			}
		}
		color[k] = black
		return ""
	}
	for k := range s.Kinds {
		if color[k] == white {
			if w := walk(k); w != "" {
				return w
			}
		}
	}
	return ""
}

// validateSteps checks that every step's link departs from the kind the
// step executes on, and bounds tree depth.
func (s *Spec) validateSteps(opName, fromKind string, steps []Step, depth int) error {
	if depth > 4 {
		return fmt.Errorf("spec %s: op %q call tree deeper than 4", s.Name, opName)
	}
	for i := range steps {
		st := &steps[i]
		li := s.linkIndex(st.Link)
		if li < 0 {
			return fmt.Errorf("spec %s: op %q step uses unknown link %q", s.Name, opName, st.Link)
		}
		l := &s.Links[li]
		if l.From != fromKind {
			return fmt.Errorf("spec %s: op %q step link %q departs from %q, not %q",
				s.Name, opName, st.Link, l.From, fromKind)
		}
		if err := s.validateSteps(opName, l.To, st.Then, depth+1); err != nil {
			return err
		}
	}
	return nil
}

// TotalWeight sums the op weights.
func (s *Spec) TotalWeight() int {
	t := 0
	for i := range s.Ops {
		t += s.Ops[i].Weight
	}
	return t
}

// MeanRate reports the long-run mean arrival rate in ops/sec, accounting
// for burst and diurnal modulation.
func (s *Spec) MeanRate() float64 {
	a := s.Arrival
	switch a.Process {
	case ArrivalBursty:
		on, off := a.BurstOn.Seconds(), a.BurstOff.Seconds()
		if on+off <= 0 {
			return a.Rate
		}
		return a.Rate * (off + a.BurstFactor*on) / (on + off)
	default:
		// Poisson is flat; the diurnal sine integrates to zero over whole
		// periods.
		return a.Rate
	}
}

// ExpectedAmplification reports the statically expected actor-to-actor
// calls per operation (mean over the op mix, using mean link degrees).
// Dynamic effects (swarm routing, Zipf-popular targets, root-actor
// exclusion) make this approximate; the exact anchor is a schedule replay
// over the compiled topology, which the tests perform.
func (s *Spec) ExpectedAmplification() float64 {
	tw := s.TotalWeight()
	if tw == 0 {
		return 0
	}
	var total float64
	for i := range s.Ops {
		op := &s.Ops[i]
		total += float64(op.Weight) * s.meanTreeSize(op.Kind, op.Steps)
	}
	return total / float64(tw)
}

// meanTreeSize reports the mean number of calls issued by one execution of
// steps on fromKind.
func (s *Spec) meanTreeSize(fromKind string, steps []Step) float64 {
	var total float64
	for i := range steps {
		st := &steps[i]
		li := s.linkIndex(st.Link)
		if li < 0 {
			continue
		}
		d := s.meanDegree(li)
		total += d * (1 + s.meanTreeSize(s.Links[li].To, st.Then))
	}
	return total
}

// meanDegree reports a link's mean out-degree.
func (s *Spec) meanDegree(li int) float64 {
	l := &s.Links[li]
	switch l.Assign {
	case AssignMod, AssignBlock:
		return 1
	case AssignInverse:
		j := s.linkIndex(l.InverseOf)
		if j < 0 {
			return 0
		}
		inv := &s.Links[j]
		fi, ti := s.kindIndex(inv.From), s.kindIndex(inv.To)
		if fi < 0 || ti < 0 || s.Kinds[ti].Population == 0 {
			return 0
		}
		return s.meanDegree(j) * float64(s.Kinds[fi].Population) / float64(s.Kinds[ti].Population)
	default:
		switch l.Degree.Kind {
		case DistFixed:
			return float64(l.Degree.A)
		case DistUniform:
			return float64(l.Degree.A+l.Degree.B) / 2
		case DistZipf:
			// No closed form worth carrying; measured empirically by the
			// compiler (Topology.MeanDegree) — callers that need precision
			// use the compiled topology.
			return float64(l.Degree.A+l.Degree.B) / 2
		}
	}
	return 0
}
