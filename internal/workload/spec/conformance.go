package spec

import (
	"fmt"
	"time"

	"actop/internal/metrics"
)

// Result is one backend's measurement of one spec run. Both backends fill
// the same structure, which is what the conformance layer compares.
type Result struct {
	Scenario string
	Backend  string // "des" or "real"

	// Horizon is the schedule length; Elapsed the time the run actually
	// took to complete the schedule (virtual for DES, wall for real —
	// for an open-loop run that keeps up, Elapsed ≈ Horizon).
	Horizon time.Duration
	Elapsed time.Duration

	Submitted uint64 // operations injected
	Completed uint64 // operations that finished successfully
	Errors    uint64 // operations that failed (real backend call errors)
	Rejected  uint64 // operations rejected by queue overflow (DES)

	// OpsExecuted counts operation executions observed at target actors —
	// the exactly-once check compares it against Completed.
	OpsExecuted uint64
	// LegsSent/LegsReceived count fan-out calls issued and delivered — the
	// value-conservation check requires them equal.
	LegsSent, LegsReceived uint64

	// JoinsRouted counts swarm join operations assigned to a lobby;
	// LobbyMembers sums the member counts the lobby actors themselves
	// report at the end of the run. "No lost lobby members" requires the
	// actors' own accounting to match the completed joins.
	JoinsRouted  uint64
	LobbyMembers uint64
	LobbiesUsed  int

	// Churned counts churn events applied.
	Churned uint64

	// Latency is the end-to-end client-operation latency distribution.
	Latency metrics.Histogram
}

// OpsPerSec reports completed operations per elapsed second.
func (r *Result) OpsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Completed) / r.Elapsed.Seconds()
}

// Amplification reports actor-to-actor calls per completed operation.
func (r *Result) Amplification() float64 {
	if r.Completed == 0 {
		return 0
	}
	return float64(r.LegsSent) / float64(r.Completed)
}

// CheckInvariants verifies the per-scenario safety properties on one
// backend's result:
//
//   - no loss: nothing rejected or errored, and every submitted operation
//     completed once the run drained;
//   - exactly-once effects: target actors observed exactly one execution
//     per completed operation (a retry that double-executed, or a dropped
//     turn, breaks the equality in opposite directions);
//   - value conservation: every fan-out leg sent was received exactly once;
//   - no lost lobby members: the lobby actors' own member accounting sums
//     to the joins the driver routed.
func (r *Result) CheckInvariants(sp *Spec) []error {
	var errs []error
	fail := func(format string, args ...interface{}) {
		errs = append(errs, fmt.Errorf("%s/%s: "+format, append([]interface{}{r.Scenario, r.Backend}, args...)...))
	}
	if r.Rejected != 0 {
		fail("%d operations rejected", r.Rejected)
	}
	if r.Errors != 0 {
		fail("%d operations errored", r.Errors)
	}
	if r.Completed != r.Submitted-r.Errors-r.Rejected {
		fail("completed %d != submitted %d - errors %d - rejected %d",
			r.Completed, r.Submitted, r.Errors, r.Rejected)
	}
	if r.OpsExecuted != r.Completed {
		fail("exactly-once violated: %d executions observed at actors for %d completed ops",
			r.OpsExecuted, r.Completed)
	}
	if r.LegsSent != r.LegsReceived {
		fail("value conservation violated: %d fan-out legs sent, %d received",
			r.LegsSent, r.LegsReceived)
	}
	if hasSwarm(sp) {
		joins := r.JoinsRouted
		if r.LobbyMembers != joins {
			fail("lobby members lost: actors report %d members for %d routed joins",
				r.LobbyMembers, joins)
		}
	}
	return errs
}

func hasSwarm(sp *Spec) bool {
	for i := range sp.Kinds {
		if sp.Kinds[i].Capacity > 0 {
			return true
		}
	}
	return false
}

// Compare cross-checks the two backends' results for one spec against the
// scenario's stated tolerance. It returns every violation (empty = the
// backends conform).
func Compare(sp *Spec, des, real *Result, tol Tolerance) []error {
	var errs []error
	fail := func(format string, args ...interface{}) {
		errs = append(errs, fmt.Errorf("%s: "+format, append([]interface{}{sp.Name}, args...)...))
	}
	for _, r := range []*Result{des, real} {
		if r.Submitted == 0 {
			fail("%s backend submitted nothing", r.Backend)
			continue
		}
		frac := float64(r.Completed) / float64(r.Submitted)
		if frac < tol.MinCompletion {
			fail("%s completion %.3f below floor %.3f", r.Backend, frac, tol.MinCompletion)
		}
	}
	if len(errs) > 0 {
		return errs
	}
	// Throughput: both backends run the same open-loop schedule, so their
	// completed-ops rates must agree (a backend that saturates or stalls
	// falls behind the schedule and diverges here).
	dr, rr := des.OpsPerSec(), real.OpsPerSec()
	if d := relDiff(dr, rr); d > tol.Throughput {
		fail("throughput diverges: DES %.1f ops/s vs real %.1f ops/s (%.1f%% apart, tolerance %.0f%%)",
			dr, rr, 100*d, 100*tol.Throughput)
	}
	// Amplification: calls per op is the structural fingerprint of the
	// workload; the two interpreters of the spec must agree on it.
	da, ra := des.Amplification(), real.Amplification()
	if d := relDiff(da, ra); d > tol.Amplification {
		fail("amplification diverges: DES %.2f calls/op vs real %.2f calls/op (%.1f%% apart, tolerance %.0f%%)",
			da, ra, 100*d, 100*tol.Amplification)
	}
	// Latency shape: quantiles must be coherent on both sides. Absolute
	// values are not comparable (the DES models a calibrated network; the
	// real runtime runs wherever it runs), so shape agreement across
	// scenarios is checked by RankCheck over a scenario set.
	for _, r := range []*Result{des, real} {
		if r.Completed == 0 {
			continue
		}
		p50, p99 := r.Latency.Quantile(0.5), r.Latency.Quantile(0.99)
		if p50 <= 0 || p99 < p50 {
			fail("%s latency shape incoherent: p50 %v p99 %v", r.Backend, p50, p99)
		}
	}
	return errs
}

func relDiff(a, b float64) float64 {
	den := a
	if b > den {
		den = b
	}
	if den == 0 {
		return 0
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	return d / den
}

// RankCheck verifies latency-shape agreement across a scenario set: for
// every pair of scenarios whose DES median latencies are separated by at
// least sep (e.g. 3 = 3×), the real runtime must order the pair the same
// way, with slack — the heavier scenario's real median must be at least
// the lighter one's. This is the cross-backend "latency shape" assertion
// that absolute numbers cannot provide: a single-hop workload must be
// cheaper than an 9-call fan-out tree in both the model and reality.
func RankCheck(names []string, desMedian, realMedian []time.Duration, sep float64) []error {
	var errs []error
	for i := range names {
		for j := range names {
			if i == j || desMedian[i] == 0 || desMedian[j] == 0 {
				continue
			}
			// Consider only pairs the DES clearly separates: i heavier.
			if float64(desMedian[i]) < sep*float64(desMedian[j]) {
				continue
			}
			if realMedian[i] < realMedian[j] {
				errs = append(errs, fmt.Errorf(
					"latency rank disagreement: DES orders %s (%v) ≥ %.0f× %s (%v) but real measures %v < %v",
					names[i], desMedian[i], sep, names[j], desMedian[j], realMedian[i], realMedian[j]))
			}
		}
	}
	return errs
}
