package spec

import (
	"strings"
	"testing"
	"time"
)

func validSpec() Spec {
	return Presence(1).Spec
}

func TestBuiltinScenariosValidate(t *testing.T) {
	for _, sc := range Scenarios(1) {
		if err := sc.Spec.Validate(); err != nil {
			t.Errorf("%s: %v", sc.Spec.Name, err)
		}
		if sc.Tol.Throughput <= 0 || sc.Tol.Amplification <= 0 || sc.Tol.MinCompletion <= 0 {
			t.Errorf("%s: tolerance not fully stated: %+v", sc.Spec.Name, sc.Tol)
		}
	}
	if len(Scenarios(1)) != 5 {
		t.Fatalf("expected 5 built-in scenarios, got %d", len(Scenarios(1)))
	}
}

func TestScenarioByName(t *testing.T) {
	for _, name := range []string{"presence", "heartbeat", "social", "iot", "matchmaking"} {
		sc, ok := ScenarioByName(name, 1)
		if !ok || sc.Spec.Name != name {
			t.Errorf("ScenarioByName(%q) = %v, %v", name, sc.Spec.Name, ok)
		}
	}
	if _, ok := ScenarioByName("nope", 1); ok {
		t.Error("unknown scenario resolved")
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		edit func(*Spec)
		want string
	}{
		{"no name", func(s *Spec) { s.Name = "" }, "missing name"},
		{"no duration", func(s *Spec) { s.Duration = 0 }, "duration"},
		{"no rate", func(s *Spec) { s.Arrival.Rate = 0 }, "rate"},
		{"dup kind", func(s *Spec) { s.Kinds[1].Name = s.Kinds[0].Name }, "duplicate kind"},
		{"dup link", func(s *Spec) { s.Links[1] = s.Links[0] }, "duplicate link"},
		{"unknown kind", func(s *Spec) { s.Links[0].To = "ghost" }, "unknown kind"},
		{"zero weight", func(s *Spec) { s.Ops[0].Weight = 0 }, "positive weight"},
		{"bad zipf pop", func(s *Spec) { s.Ops[1].Pop = Pop{Zipf: true, S: 0.5} }, "exponent"},
		{"unknown step link", func(s *Spec) { s.Ops[0].Steps[0].Link = "ghost" }, "unknown link"},
		{"wrong step origin", func(s *Spec) { s.Ops[0].Steps[0].Link = "roster" }, "departs from"},
		{"kind cycle", func(s *Spec) {
			s.Links = append(s.Links, Link{Name: "back", From: "presence", To: "console",
				Assign: AssignRandom, Degree: Fixed(1)})
			s.Ops[0].Steps[0].Then[0].Then = []Step{{Link: "back"}}
		}, "kind cycle"},
		{"join without swarm", func(s *Spec) { s.Ops[1].Join = true }, "pair up"},
		{"churning swarm", func(s *Spec) {
			s.Kinds = append(s.Kinds, Kind{Name: "lobby", Capacity: 4, ChurnRate: 1,
				LifetimeMin: time.Second, LifetimeMax: time.Second})
		}, "churn"},
		{"populated swarm", func(s *Spec) {
			s.Kinds = append(s.Kinds, Kind{Name: "lobby", Capacity: 4, Population: 3,
				LifetimeMin: time.Second, LifetimeMax: time.Second})
		}, "population 0"},
		{"swarm link", func(s *Spec) {
			s.Kinds = append(s.Kinds, Kind{Name: "lobby", Capacity: 4,
				LifetimeMin: time.Second, LifetimeMax: time.Second})
			s.Links = append(s.Links, Link{Name: "bad", From: "console", To: "lobby"})
		}, "swarm"},
		{"inverse of inverse", func(s *Spec) {
			s.Links = append(s.Links, Link{Name: "again", From: "presence", To: "game",
				Assign: AssignInverse, InverseOf: "roster"})
		}, "inverse"},
		{"inverse endpoints", func(s *Spec) { s.Links[2].To = "console" }, "transpose"},
	}
	for _, tc := range cases {
		sp := validSpec()
		tc.edit(&sp)
		err := sp.Validate()
		if err == nil {
			t.Errorf("%s: validation passed, want error containing %q", tc.name, tc.want)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestTopologyShapes(t *testing.T) {
	sp := validSpec()
	topo, err := BuildTopology(&sp)
	if err != nil {
		t.Fatal(err)
	}
	records := sp.kindPop(t, "presence")
	games := sp.kindPop(t, "game")
	enroll, roster := sp.linkIndex("enroll"), sp.linkIndex("roster")

	// Block assignment: every presence record maps to exactly one valid
	// game, and the inverse link partitions the records back without loss.
	seen := 0
	for p := 0; p < records; p++ {
		ts := topo.Targets(enroll, p)
		if len(ts) != 1 || int(ts[0]) >= games {
			t.Fatalf("record %d: bad game assignment %v", p, ts)
		}
	}
	for g := 0; g < games; g++ {
		for _, m := range topo.Targets(roster, g) {
			got := topo.Targets(enroll, int(m))
			if len(got) != 1 || int(got[0]) != g {
				t.Fatalf("record %d of game %d maps back to %v", m, g, got)
			}
			seen++
		}
	}
	if seen != records {
		t.Fatalf("inverse link covers %d records, want %d", seen, records)
	}
}

func (s *Spec) kindPop(t *testing.T, name string) int {
	t.Helper()
	ki := s.kindIndex(name)
	if ki < 0 {
		t.Fatalf("no kind %q", name)
	}
	return s.Kinds[ki].Population
}

func TestTopologyRandomDegrees(t *testing.T) {
	sp := Social(1).Spec
	topo, err := BuildTopology(&sp)
	if err != nil {
		t.Fatal(err)
	}
	li := sp.linkIndex("followers")
	users := sp.Kinds[0].Population
	feeds := sp.kindPop(t, "feed")
	for u := 0; u < users; u++ {
		ts := topo.Targets(li, u)
		dup := make(map[int32]bool)
		for _, f := range ts {
			if int(f) >= feeds {
				t.Fatalf("user %d follows out-of-range feed %d", u, f)
			}
			if dup[f] {
				t.Fatalf("user %d delivers twice to feed %d", u, f)
			}
			dup[f] = true
		}
	}
	if md := topo.MeanDegree(li); md <= 0 {
		t.Fatalf("mean follower degree %v", md)
	}
}

func TestStreamScheduleProperties(t *testing.T) {
	for _, sc := range Scenarios(1) {
		sp := sc.Spec
		sched := NewStream(&sp).Schedule()
		if len(sched) == 0 {
			t.Fatalf("%s: empty schedule", sp.Name)
		}
		var last time.Duration
		ops := 0
		for _, d := range sched {
			if d.At < last {
				t.Fatalf("%s: schedule out of order (%v after %v)", sp.Name, d.At, last)
			}
			last = d.At
			if d.At >= sp.Duration {
				t.Fatalf("%s: event at %v beyond horizon %v", sp.Name, d.At, sp.Duration)
			}
			if d.Ev == EvOp {
				ops++
				op := &sp.Ops[d.Op]
				if !op.Join {
					n := sp.Kinds[d.Kind].Population
					if d.Target < 0 || d.Target >= n {
						t.Fatalf("%s: op target %d out of [0,%d)", sp.Name, d.Target, n)
					}
				}
			}
		}
		// The realized op count should be within 30% of rate×duration.
		want := sp.MeanRate() * sp.Duration.Seconds()
		if f := float64(ops); f < 0.7*want || f > 1.3*want {
			t.Errorf("%s: %d ops scheduled, expected ≈%.0f", sp.Name, ops, want)
		}
	}
}

func TestZipfPopularitySkew(t *testing.T) {
	sp := Social(1).Spec
	sched := NewStream(&sp).Schedule()
	hot, total := 0, 0
	for _, d := range sched {
		if d.Ev != EvOp {
			continue
		}
		total++
		if d.Target < sp.Kinds[0].Population/10 {
			hot++
		}
	}
	if total == 0 {
		t.Fatal("no ops")
	}
	// Zipf(1.5) concentrates far more than 10% of traffic on the hottest
	// 10% of keys; uniform would give ~10%.
	if frac := float64(hot) / float64(total); frac < 0.3 {
		t.Errorf("hottest decile got %.0f%% of ops; Zipf skew missing", 100*frac)
	}
}

func TestMeanRateBursty(t *testing.T) {
	sp := Matchmaking(1).Spec
	a := sp.Arrival
	on, off := a.BurstOn.Seconds(), a.BurstOff.Seconds()
	want := a.Rate * (off + a.BurstFactor*on) / (on + off)
	if got := sp.MeanRate(); got != want {
		t.Errorf("MeanRate = %v, want %v", got, want)
	}
}

func TestSwarmLifetimeDeterministicAndBounded(t *testing.T) {
	sp := Matchmaking(1).Spec
	k := sp.kindIndex("lobby")
	for i := 0; i < 50; i++ {
		l1 := SwarmLifetime(&sp, k, i)
		l2 := SwarmLifetime(&sp, k, i)
		if l1 != l2 {
			t.Fatalf("slot %d lifetime not deterministic: %v vs %v", i, l1, l2)
		}
		min, max := sp.Kinds[k].LifetimeMin, sp.Kinds[k].LifetimeMax
		if l1 < min || l1 > max {
			t.Fatalf("slot %d lifetime %v outside [%v, %v]", i, l1, min, max)
		}
	}
}

func TestKeyOf(t *testing.T) {
	if got := KeyOf(7, 0); got != "7" {
		t.Errorf("KeyOf(7,0) = %q", got)
	}
	if got := KeyOf(7, 3); got != "7.g3" {
		t.Errorf("KeyOf(7,3) = %q", got)
	}
}

func TestExpectedAmplificationPresence(t *testing.T) {
	sp := validSpec()
	// status: 1 (mygame) + mean members per game; touch: 0. Weighted 1:3.
	perGame := float64(sp.Kinds[0].Population) / float64(sp.Kinds[1].Population)
	want := (1 + perGame) / 4
	if got := sp.ExpectedAmplification(); got < 0.9*want || got > 1.1*want {
		t.Errorf("ExpectedAmplification = %v, want ≈%v", got, want)
	}
}
