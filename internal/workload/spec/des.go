package spec

import (
	"time"

	"actop/internal/des"
	"actop/internal/sim"
)

// The DES backend: a Spec compiled onto the cluster simulator
// (internal/sim). One generic handler interprets the spec's fan-out call
// trees with the same collector machinery the hand-written Halo workload
// uses, so the spec-driven Presence scenario exercises the same simulated
// code paths (stage queues, LPC/RPC split, gather fan-in) as the original.

// DESOptions configures a DES run of a spec.
type DESOptions struct {
	// Servers sizes the simulated cluster (default 3 — matching the
	// real-runtime conformance cluster).
	Servers int
	// Config, when non-nil, overrides the calibrated base configuration
	// (Servers and Seed are still taken from the options/spec).
	Config *sim.Config
	// RecordTrace captures the completion event trace for determinism
	// tests.
	RecordTrace bool
}

// churnDrain is how long a churned-out incarnation stays deliverable
// before deactivating — enough virtual time for every in-flight message
// addressed to it to land.
const churnDrain = 1 * time.Second

// TraceEntry is one completed operation in a DES run's event trace: with a
// fixed seed the whole sequence is bit-reproducible.
type TraceEntry struct {
	At des.Time
	ID uint64
}

// DESRun is the outcome of RunDES.
type DESRun struct {
	Result Result
	// Trace is the completion event sequence (RecordTrace only).
	Trace []TraceEntry
	// Fired is the total number of simulator events executed.
	Fired uint64
}

// compiled spec structures: link/kind references resolved to indices once.
type compiledStep struct {
	link   int
	toKind int
	gather bool
	then   []*compiledStep
}

type compiledOp struct {
	op    *Op
	kind  int
	steps []*compiledStep
}

func compileOps(sp *Spec) []*compiledOp {
	out := make([]*compiledOp, len(sp.Ops))
	for i := range sp.Ops {
		op := &sp.Ops[i]
		out[i] = &compiledOp{
			op:    op,
			kind:  sp.kindIndex(op.Kind),
			steps: compileSteps(sp, op.Steps),
		}
	}
	return out
}

func compileSteps(sp *Spec, steps []Step) []*compiledStep {
	out := make([]*compiledStep, len(steps))
	for i := range steps {
		st := &steps[i]
		li := sp.linkIndex(st.Link)
		out[i] = &compiledStep{
			link:   li,
			toKind: sp.kindIndex(sp.Links[li].To),
			gather: st.Gather,
			then:   compileSteps(sp, st.Then),
		}
	}
	return out
}

// desState is the simulated actor's state: its identity in the topology
// plus the swarm member count (the lobby's own accounting, which the
// no-lost-members invariant audits).
type desState struct {
	kind, slot int
	members    int
}

// desGather tracks one fan-in collection point, exactly like the Halo
// workload's fanout struct: it travels in message payloads, so dropped
// legs leak nothing into actor state.
type desGather struct {
	remaining int
	parent    *desGather
	owner     sim.ActorID
	req       *sim.Request
	root      bool
}

type desOpMsg struct {
	op *compiledOp
}

type desStepMsg struct {
	step   *compiledStep
	parent *desGather // nil when the hop is not gathered
}

type desSwarm struct {
	open    sim.ActorID // 0 = none filling
	slot    int         // slot index of the open actor
	next    int         // next slot to open
	members int         // members routed to the open actor
}

type desRun struct {
	sp   *Spec
	topo *Topology
	c    *sim.Cluster
	ops  []*compiledOp
	ids  [][]sim.ActorID // per kind, per slot
	sw   []desSwarm      // per kind (zero unless Capacity > 0)

	res   Result
	trace []TraceEntry
	rec   bool
}

// RunDES executes the spec on the simulator and reports the measured
// Result (plus the event trace when requested).
func RunDES(sp *Spec, opts DESOptions) (*DESRun, error) {
	topo, err := BuildTopology(sp)
	if err != nil {
		return nil, err
	}
	servers := opts.Servers
	if servers <= 0 {
		servers = 3
	}
	cfg := sim.DefaultConfig()
	if opts.Config != nil {
		cfg = *opts.Config
	}
	cfg.Servers = servers
	cfg.Seed = subSeed(sp.Seed, "sim", 0)
	c := sim.New(cfg)

	r := &desRun{
		sp: sp, topo: topo, c: c, ops: compileOps(sp),
		ids: make([][]sim.ActorID, len(sp.Kinds)),
		sw:  make([]desSwarm, len(sp.Kinds)),
		rec: opts.RecordTrace,
	}
	r.res.Scenario = sp.Name
	r.res.Backend = "des"
	r.res.Horizon = sp.Duration

	// Populate the static kinds.
	for ki := range sp.Kinds {
		k := &sp.Kinds[ki]
		r.ids[ki] = make([]sim.ActorID, k.Population)
		for i := 0; i < k.Population; i++ {
			r.ids[ki][i] = c.CreateActor(r.handle, &desState{kind: ki, slot: i})
		}
	}

	// Install the whole schedule up front; the kernel orders it with the
	// messages it generates.
	maxLife := time.Duration(0)
	for ki := range sp.Kinds {
		if sp.Kinds[ki].LifetimeMax > maxLife {
			maxLife = sp.Kinds[ki].LifetimeMax
		}
	}
	for _, d := range NewStream(sp).Schedule() {
		d := d
		c.K.At(d.At, func() { r.apply(d) })
	}

	// Run the horizon plus drain slack: open-loop arrivals stop at
	// Duration; in-flight trees and pending lobby retirements finish
	// within the longest swarm lifetime plus a little queue time.
	c.Run(sp.Duration + maxLife + 2*time.Second)

	// Fold the cluster counters and the still-live lobby accounting in.
	r.res.Elapsed = sp.Duration
	r.res.Submitted = c.Submitted
	r.res.Completed = c.Completed
	r.res.Rejected = c.Rejected
	r.res.Latency = c.Latency
	for ki := range sp.Kinds {
		sw := &r.sw[ki]
		if sw.open != 0 {
			r.harvestLobby(sw.open)
			sw.open = 0
		}
	}
	return &DESRun{Result: r.res, Trace: r.trace, Fired: c.K.Fired()}, nil
}

// apply executes one scheduled workload event.
func (r *desRun) apply(d Draw) {
	switch d.Ev {
	case EvOp:
		cop := r.ops[d.Op]
		var target sim.ActorID
		if cop.op.Join {
			target = r.routeJoin(cop.kind)
		} else {
			target = r.ids[cop.kind][d.Target]
		}
		var done func(*sim.Request, des.Time, bool)
		if r.rec {
			done = func(req *sim.Request, at des.Time, rejected bool) {
				if !rejected {
					r.trace = append(r.trace, TraceEntry{At: at, ID: req.ID})
				}
			}
		}
		r.c.SubmitRequest(target, "op", &desOpMsg{op: cop}, done)
	case EvChurn:
		// Retire the victim and re-create it in the same topology slot:
		// links keep pointing at the slot, so the fresh incarnation takes
		// over the old one's place, as a re-activated virtual actor would.
		// The old incarnation lingers for a drain window so in-flight
		// messages still deliver (a virtual actor never vanishes under a
		// caller), then deactivates.
		old := r.ids[d.Kind][d.Target]
		r.c.K.After(churnDrain, func() { r.c.DestroyActor(old) })
		r.ids[d.Kind][d.Target] = r.c.CreateActor(r.handle, &desState{kind: d.Kind, slot: d.Target})
		r.res.Churned++
	}
}

// routeJoin picks (creating if needed) the filling lobby of a swarm kind
// and accounts the member, opening a fresh lobby at capacity.
func (r *desRun) routeJoin(kind int) sim.ActorID {
	sw := &r.sw[kind]
	k := &r.sp.Kinds[kind]
	if sw.open == 0 {
		sw.slot = sw.next
		sw.next++
		sw.open = r.c.CreateActor(r.handle, &desState{kind: kind, slot: sw.slot})
		sw.members = 0
		r.res.LobbiesUsed++
	}
	id := sw.open
	sw.members++
	r.res.JoinsRouted++
	if sw.members >= k.Capacity {
		slot := sw.slot
		r.c.K.After(SwarmLifetime(r.sp, kind, slot), func() { r.retireLobby(id) })
		sw.open = 0
	}
	return id
}

// retireLobby harvests a full lobby's own member count and destroys it.
func (r *desRun) retireLobby(id sim.ActorID) {
	r.harvestLobby(id)
	r.c.DestroyActor(id)
}

func (r *desRun) harvestLobby(id sim.ActorID) {
	if st, ok := r.c.ActorState(id).(*desState); ok {
		r.res.LobbyMembers += uint64(st.members)
	}
}

// handle is the generic spec actor: it interprets op call trees with
// explicit gather collectors.
func (r *desRun) handle(ctx *sim.Ctx, msg *sim.Message) {
	st, ok := ctx.State().(*desState)
	if !ok {
		return
	}
	switch msg.Type {
	case "op":
		m := msg.Payload.(*desOpMsg)
		r.res.OpsExecuted++
		if m.op.op.Join {
			st.members++
		}
		g := &desGather{owner: ctx.Self, req: msg.Req, root: true}
		r.runSteps(ctx, st, m.op.steps, g)
	case "step":
		m := msg.Payload.(*desStepMsg)
		r.res.LegsReceived++
		g := &desGather{owner: ctx.Self, req: msg.Req, parent: m.parent}
		r.runSteps(ctx, st, m.step.then, g)
	case "ack":
		g := msg.Payload.(*desGather)
		g.remaining--
		if g.remaining == 0 {
			r.finish(ctx, g)
		}
	}
}

// runSteps fans the call tree out one level: every reached actor executes
// its Then steps; gathered hops ack back through g.
func (r *desRun) runSteps(ctx *sim.Ctx, st *desState, steps []*compiledStep, g *desGather) {
	for _, cs := range steps {
		targets := r.topo.Targets(cs.link, st.slot)
		for _, t := range targets {
			r.res.LegsSent++
			var parent *desGather
			if cs.gather {
				g.remaining++
				parent = g
			}
			ctx.Send(r.ids[cs.toKind][t], "step", &desStepMsg{step: cs, parent: parent}, g.req)
		}
	}
	if g.remaining == 0 {
		r.finish(ctx, g)
	}
}

// finish resolves a completed collection point: the root replies to the
// client, nested gathers ack their parent, fire-and-forget subtrees just
// end.
func (r *desRun) finish(ctx *sim.Ctx, g *desGather) {
	switch {
	case g.root:
		ctx.ReplyToClient(g.req)
	case g.parent != nil:
		ctx.Send(g.parent.owner, "ack", g.parent, g.req)
	}
}
