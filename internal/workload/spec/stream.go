package spec

import (
	"fmt"
	"math"
	"time"

	"actop/internal/des"
)

// Seed derivation: every random purpose (topology, arrivals, per-kind
// churn, per-swarm-slot lifetimes) gets its own stream, derived from
// Spec.Seed with splitmix64 so streams are independent but fully
// determined by the one seed. Both backends derive identically, which is
// what makes the real runtime replay the DES schedule.

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// subSeed derives the seed of an independent stream identified by purpose
// tag and index.
func subSeed(seed int64, tag string, idx int) int64 {
	h := uint64(seed)
	for _, c := range tag {
		h = splitmix64(h ^ uint64(c))
	}
	return int64(splitmix64(h ^ uint64(idx)))
}

// Topology is the compiled static structure of a spec: per-link adjacency
// lists, identical across backends for a given seed.
type Topology struct {
	Spec *Spec
	// Adj[li][from] lists the target slots of from-actor `from` along
	// link li (indices into the To kind's population).
	Adj [][][]int32
}

// BuildTopology expands the spec's links deterministically.
func BuildTopology(sp *Spec) (*Topology, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	t := &Topology{Spec: sp, Adj: make([][][]int32, len(sp.Links))}
	rng := des.NewRand(subSeed(sp.Seed, "topology", 0))
	// Two passes so AssignInverse can transpose links declared after it.
	for li := range sp.Links {
		l := &sp.Links[li]
		if l.Assign == AssignInverse {
			continue
		}
		nFrom := sp.Kinds[sp.kindIndex(l.From)].Population
		nTo := sp.Kinds[sp.kindIndex(l.To)].Population
		adj := make([][]int32, nFrom)
		for i := 0; i < nFrom; i++ {
			switch l.Assign {
			case AssignMod:
				adj[i] = []int32{int32(i % nTo)}
			case AssignBlock:
				per := (nFrom + nTo - 1) / nTo
				adj[i] = []int32{int32(i / per)}
			default: // AssignRandom
				adj[i] = sampleDistinct(rng, degreeSample(rng, l.Degree), nTo, i, l.From == l.To)
			}
		}
		t.Adj[li] = adj
	}
	for li := range sp.Links {
		l := &sp.Links[li]
		if l.Assign != AssignInverse {
			continue
		}
		src := sp.linkIndex(l.InverseOf)
		nFrom := sp.Kinds[sp.kindIndex(l.From)].Population
		adj := make([][]int32, nFrom)
		for from, targets := range t.Adj[src] {
			for _, to := range targets {
				adj[to] = append(adj[to], int32(from))
			}
		}
		t.Adj[li] = adj
	}
	return t, nil
}

// degreeSample draws one out-degree.
func degreeSample(rng *des.Rand, d Dist) int {
	switch d.Kind {
	case DistUniform:
		return d.A + rng.Intn(d.B-d.A+1)
	case DistZipf:
		span := d.B - d.A
		if span <= 0 {
			return d.A
		}
		return d.A + int(rng.Zipf(d.S, span+1).Uint64())
	default:
		return d.A
	}
}

// sampleDistinct picks deg distinct targets in [0, n), excluding self when
// noSelf (self-loops make no sense for fan-out links within one kind).
func sampleDistinct(rng *des.Rand, deg, n, self int, noSelf bool) []int32 {
	limit := n
	if noSelf {
		limit = n - 1
	}
	if deg > limit {
		deg = limit
	}
	if deg <= 0 {
		return nil
	}
	out := make([]int32, 0, deg)
	seen := make(map[int32]bool, deg)
	for len(out) < deg {
		v := int32(rng.Intn(n))
		if noSelf && int(v) == self {
			continue
		}
		if seen[v] {
			continue
		}
		seen[v] = true
		out = append(out, v)
	}
	return out
}

// Targets lists the adjacency of one actor along one link.
func (t *Topology) Targets(link int, from int) []int32 {
	if link < 0 || link >= len(t.Adj) || from < 0 || from >= len(t.Adj[link]) {
		return nil
	}
	return t.Adj[link][from]
}

// MeanDegree reports the realized mean out-degree of a link.
func (t *Topology) MeanDegree(link int) float64 {
	adj := t.Adj[link]
	if len(adj) == 0 {
		return 0
	}
	total := 0
	for _, ts := range adj {
		total += len(ts)
	}
	return float64(total) / float64(len(adj))
}

// MeanTreeSize reports the realized mean calls per execution of an op's
// tree (using measured link degrees), the amplification anchor.
func (t *Topology) MeanTreeSize(op *Op) float64 {
	return t.meanSteps(op.Steps)
}

func (t *Topology) meanSteps(steps []Step) float64 {
	var total float64
	for i := range steps {
		st := &steps[i]
		li := t.Spec.linkIndex(st.Link)
		if li < 0 {
			continue
		}
		total += t.MeanDegree(li) * (1 + t.meanSteps(st.Then))
	}
	return total
}

// EvKind tags a scheduled workload event.
type EvKind uint8

// Event kinds.
const (
	// EvOp is one client operation arrival.
	EvOp EvKind = iota
	// EvChurn retires and re-creates one actor of a kind.
	EvChurn
)

// Draw is one scheduled workload event. The schedule is a pure function
// of the spec (including its seed): both backends consume the identical
// sequence.
type Draw struct {
	At time.Duration
	Ev EvKind

	// EvOp fields.
	Op     int    // index into Spec.Ops
	Target int    // population slot of the target kind (non-Join ops)
	Src    uint64 // uniform randomness for driver-side choices (e.g. submit node)

	// EvChurn fields (and the kind of an op's target, for convenience).
	Kind int // index into Spec.Kinds
}

// Stream generates the merged, time-ordered event schedule.
type Stream struct {
	sp *Spec

	// op arrivals
	opRng   *des.Rand
	arr     arrivalState
	opNext  Draw
	opDone  bool
	zipfs   []*zipfSampler
	weights []int
	totalW  int

	// per-kind churn
	churn []churnState
}

type zipfSampler struct {
	z func() uint64
}

type churnState struct {
	kind int
	rng  *des.Rand
	mean time.Duration
	next time.Duration
	done bool
}

// arrivalState advances the (possibly modulated) arrival process.
type arrivalState struct {
	a   Arrival
	rng *des.Rand
	now time.Duration

	// bursty state machine
	burstOn   bool
	burstEdge time.Duration
}

// next returns the next arrival instant after the current one, advancing
// internal state. The modulated processes are generated by thinning
// against the peak rate, so every variate comes from the one stream.
func (s *arrivalState) next() time.Duration {
	switch s.a.Process {
	case ArrivalBursty:
		peak := s.a.Rate * s.a.BurstFactor
		mean := time.Duration(float64(time.Second) / peak)
		for {
			s.now += s.rng.Exp(mean)
			for s.now >= s.burstEdge {
				if s.burstOn {
					s.burstOn = false
					s.burstEdge += s.rng.Exp(s.a.BurstOff)
				} else {
					s.burstOn = true
					s.burstEdge += s.rng.Exp(s.a.BurstOn)
				}
			}
			rate := s.a.Rate
			if s.burstOn {
				rate = peak
			}
			if s.rng.Float64() < rate/peak {
				return s.now
			}
		}
	case ArrivalDiurnal:
		peak := s.a.Rate * (1 + s.a.Amplitude)
		mean := time.Duration(float64(time.Second) / peak)
		for {
			s.now += s.rng.Exp(mean)
			phase := 2 * math.Pi * float64(s.now) / float64(s.a.Period)
			rate := s.a.Rate * (1 + s.a.Amplitude*math.Sin(phase))
			if s.rng.Float64() < rate/peak {
				return s.now
			}
		}
	default:
		s.now += s.rng.Exp(time.Duration(float64(time.Second) / s.a.Rate))
		return s.now
	}
}

// NewStream compiles the spec's event schedule generator.
func NewStream(sp *Spec) *Stream {
	st := &Stream{
		sp:    sp,
		opRng: des.NewRand(subSeed(sp.Seed, "arrivals", 0)),
	}
	st.arr = arrivalState{a: sp.Arrival, rng: st.opRng}
	st.zipfs = make([]*zipfSampler, len(sp.Ops))
	st.weights = make([]int, len(sp.Ops))
	for i := range sp.Ops {
		op := &sp.Ops[i]
		st.weights[i] = op.Weight
		st.totalW += op.Weight
		if op.Pop.Zipf {
			n := sp.Kinds[sp.kindIndex(op.Kind)].Population
			z := st.opRng.Zipf(op.Pop.S, n)
			st.zipfs[i] = &zipfSampler{z: z.Uint64}
		}
	}
	for ki := range sp.Kinds {
		k := &sp.Kinds[ki]
		if k.ChurnRate <= 0 || k.Population == 0 {
			continue
		}
		rate := k.ChurnRate * float64(k.Population)
		cs := churnState{
			kind: ki,
			rng:  des.NewRand(subSeed(sp.Seed, "churn/"+k.Name, ki)),
			mean: time.Duration(float64(time.Second) / rate),
		}
		cs.next = cs.rng.Exp(cs.mean)
		st.churn = append(st.churn, cs)
	}
	st.advanceOp()
	return st
}

// advanceOp pre-draws the next op arrival.
func (s *Stream) advanceOp() {
	at := s.arr.next()
	if at >= s.sp.Duration {
		s.opDone = true
		return
	}
	// Op selection by weight, then target by popularity.
	w := s.opRng.Intn(s.totalW)
	op := 0
	for i, wt := range s.weights {
		if w < wt {
			op = i
			break
		}
		w -= wt
	}
	o := &s.sp.Ops[op]
	ki := s.sp.kindIndex(o.Kind)
	target := 0
	if !o.Join {
		n := s.sp.Kinds[ki].Population
		if s.zipfs[op] != nil {
			target = int(s.zipfs[op].z())
			if target >= n {
				target = n - 1
			}
		} else {
			target = s.opRng.Intn(n)
		}
	}
	s.opNext = Draw{
		At: at, Ev: EvOp, Op: op, Target: target, Kind: ki,
		Src: uint64(s.opRng.Intn(1 << 30)),
	}
}

// Next returns the next event in time order; ok is false once the horizon
// is exhausted.
func (s *Stream) Next() (Draw, bool) {
	best := -1 // -1 = op arrival, otherwise index into churn states
	var bestAt time.Duration
	if !s.opDone {
		bestAt = s.opNext.At
	} else {
		bestAt = math.MaxInt64
	}
	for i := range s.churn {
		c := &s.churn[i]
		if c.done {
			continue
		}
		if c.next < bestAt {
			best, bestAt = i, c.next
		}
	}
	if bestAt >= s.sp.Duration {
		return Draw{}, false
	}
	if best == -1 {
		d := s.opNext
		s.advanceOp()
		return d, true
	}
	c := &s.churn[best]
	victim := c.rng.Intn(s.sp.Kinds[c.kind].Population)
	d := Draw{At: c.next, Ev: EvChurn, Kind: c.kind, Target: victim}
	c.next += c.rng.Exp(c.mean)
	if c.next >= s.sp.Duration {
		c.done = true
	}
	return d, true
}

// Schedule materializes the whole event sequence (the real-runtime driver
// walks it against the wall clock; tests use it to assert determinism).
func (s *Stream) Schedule() []Draw {
	var out []Draw
	for {
		d, ok := s.Next()
		if !ok {
			return out
		}
		out = append(out, d)
	}
}

// SwarmLifetime returns the deterministic post-fill lifetime of swarm slot
// idx of the given kind — a pure function of (seed, kind, slot), so the
// two backends agree without sharing a stream.
func SwarmLifetime(sp *Spec, kind, idx int) time.Duration {
	k := &sp.Kinds[kind]
	r := des.NewRand(subSeed(sp.Seed, "lifetime/"+k.Name, idx))
	return r.Uniform(k.LifetimeMin, k.LifetimeMax+1)
}

// KeyOf renders the real-runtime actor key of a population slot at a churn
// generation: "slot" for generation 0, "slot.gN" after N churn rebirths.
// The DES uses fresh ActorIDs instead; both encode the same identity
// timeline.
func KeyOf(slot, gen int) string {
	if gen == 0 {
		return fmt.Sprintf("%d", slot)
	}
	return fmt.Sprintf("%d.g%d", slot, gen)
}
