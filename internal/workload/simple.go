package workload

import (
	"time"

	"actop/internal/des"
	"actop/internal/graph"
	"actop/internal/sim"
)

// counterState is the Fig. 4/5 micro-benchmark actor: a client request
// increments a counter and returns.
type counterState struct{ n uint64 }

func counterHandler(ctx *sim.Ctx, msg *sim.Message) {
	if st, ok := ctx.State().(*counterState); ok {
		st.n++
	}
	ctx.ReplyToClient(msg.Req)
}

// Counter is the single-server counter micro-benchmark (§3, Fig. 4/5):
// NumActors counter actors on one server, client requests incrementing
// random counters.
type Counter struct {
	C           *sim.Cluster
	NumActors   int
	RequestRate float64
	Seed        int64

	actors []sim.ActorID
	rng    *des.Rand
}

// NewCounter creates the workload; all actors land on server 0 (the paper
// runs it on a single server).
func NewCounter(c *sim.Cluster, numActors int, rate float64, seed int64) *Counter {
	w := &Counter{C: c, NumActors: numActors, RequestRate: rate, Seed: seed, rng: des.NewRand(seed)}
	for i := 0; i < numActors; i++ {
		w.actors = append(w.actors, c.CreateActorOn(graph.ServerID(0), counterHandler, &counterState{}))
	}
	return w
}

// Start begins Poisson client arrivals.
func (w *Counter) Start() {
	if w.RequestRate <= 0 || len(w.actors) == 0 {
		return
	}
	mean := time.Duration(float64(time.Second) / w.RequestRate)
	var fire func()
	fire = func() {
		a := w.actors[w.rng.Intn(len(w.actors))]
		w.C.SubmitRequest(a, "inc", nil, nil)
		w.C.K.After(w.rng.Exp(mean), fire)
	}
	w.C.K.After(w.rng.Exp(mean), fire)
}

// Value reads a counter actor's value (for tests).
func (w *Counter) Value(i int) uint64 {
	if st, ok := w.C.ActorState(w.actors[i]).(*counterState); ok {
		return st.n
	}
	return 0
}

// Actors exposes the actor ids.
func (w *Counter) Actors() []sim.ActorID { return w.actors }

// hbState is one monitored entity's latest status.
type hbState struct {
	lastBeat des.Time
	beats    uint64
}

func heartbeatHandler(ctx *sim.Ctx, msg *sim.Message) {
	if st, ok := ctx.State().(*hbState); ok {
		st.lastBeat = ctx.Now
		st.beats++
	}
	ctx.ReplyToClient(msg.Req)
}

// Heartbeat is the §6.2 monitoring service: clients periodically update the
// status of their entity actor; the call pattern is a single actor hop with
// high fan-in, like running statistics/aggregate/standing-query services.
type Heartbeat struct {
	C           *sim.Cluster
	NumEntities int
	RequestRate float64
	Seed        int64

	actors []sim.ActorID
	rng    *des.Rand
}

// NewHeartbeat creates the workload on server 0 (the paper runs it on one
// server, with 8 loader machines).
func NewHeartbeat(c *sim.Cluster, entities int, rate float64, seed int64) *Heartbeat {
	w := &Heartbeat{C: c, NumEntities: entities, RequestRate: rate, Seed: seed, rng: des.NewRand(seed)}
	for i := 0; i < entities; i++ {
		w.actors = append(w.actors, c.CreateActorOn(graph.ServerID(0), heartbeatHandler, &hbState{}))
	}
	return w
}

// Start begins Poisson heartbeat arrivals over random entities.
func (w *Heartbeat) Start() {
	if w.RequestRate <= 0 || len(w.actors) == 0 {
		return
	}
	mean := time.Duration(float64(time.Second) / w.RequestRate)
	var fire func()
	fire = func() {
		a := w.actors[w.rng.Intn(len(w.actors))]
		w.C.SubmitRequest(a, "beat", nil, nil)
		w.C.K.After(w.rng.Exp(mean), fire)
	}
	w.C.K.After(w.rng.Exp(mean), fire)
}

// Beats reports total beats recorded by entity i.
func (w *Heartbeat) Beats(i int) uint64 {
	if st, ok := w.C.ActorState(w.actors[i]).(*hbState); ok {
		return st.beats
	}
	return 0
}
