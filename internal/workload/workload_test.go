package workload

import (
	"testing"
	"time"

	"actop/internal/sim"
)

// quickHalo is a scaled-down Halo config that reaches steady state fast.
func quickHalo(players int, rate float64) HaloConfig {
	return HaloConfig{
		TargetPlayers:  players,
		PlayersPerGame: 8,
		IdlePoolTarget: players / 100,
		GameMin:        20 * time.Minute,
		GameMax:        30 * time.Minute,
		GamesMin:       3,
		GamesMax:       5,
		RequestRate:    rate,
		Prefill:        true,
		TimeScale:      1,
		Seed:           11,
	}
}

func quickCluster(servers int) *sim.Cluster {
	cfg := sim.DefaultConfig()
	cfg.Servers = servers
	cfg.StatsWindow = 10 * time.Second
	return sim.New(cfg)
}

func TestHaloPrefillPopulation(t *testing.T) {
	c := quickCluster(4)
	h := NewHalo(c, quickHalo(2000, 0))
	h.Start()
	if h.LivePlayers() != 2000 {
		t.Fatalf("players = %d", h.LivePlayers())
	}
	// Pool drained to ~target; everyone else in a game.
	if h.PoolSize() < 20 || h.PoolSize() >= 20+8 {
		t.Fatalf("pool = %d, want in [20, 28)", h.PoolSize())
	}
	wantGames := (2000 - h.PoolSize()) / 8
	if h.GamesFormed != wantGames {
		t.Fatalf("games formed = %d, want %d", h.GamesFormed, wantGames)
	}
	// Actor count = players + games.
	if c.NumActors() != h.LivePlayers()+h.GamesFormed-h.GamesEnded {
		t.Fatalf("actors %d vs players %d + games %d", c.NumActors(), h.LivePlayers(), h.GamesFormed-h.GamesEnded)
	}
}

func TestHaloRequestGenerates18ActorMessages(t *testing.T) {
	c := quickCluster(4)
	cfg := quickHalo(2000, 100)
	h := NewHalo(c, cfg)
	h.Start()
	c.Run(30 * time.Second)
	if c.Completed == 0 {
		t.Fatal("no completed requests")
	}
	perReq := float64(c.ActorCall.Count()) / float64(c.Completed)
	// 1 (p→g) + 8 (g→members) + 8 (acks) + 1 (done) = 18; a small fraction
	// of queries hit idle players (0 messages), in-flight requests skew
	// slightly low.
	if perReq < 15 || perReq > 18.5 {
		t.Fatalf("actor messages per request = %.2f, want ≈18", perReq)
	}
}

func TestHaloRemoteFractionMatchesRandomPlacement(t *testing.T) {
	// With random placement on N servers, ~ (1 − 1/N) of messages are
	// remote (§3 reports ≈90% on 10 servers).
	c := quickCluster(10)
	h := NewHalo(c, quickHalo(3000, 200))
	h.Start()
	c.Run(time.Minute)
	rf := c.RemoteSeries.Last()
	if rf < 0.82 || rf > 0.97 {
		t.Fatalf("remote fraction = %.3f, want ≈0.9", rf)
	}
}

func TestHaloOraclePlacementMostlyLocal(t *testing.T) {
	c := quickCluster(10)
	cfg := quickHalo(3000, 200)
	cfg.OraclePlacement = true
	h := NewHalo(c, cfg)
	h.Start()
	c.Run(time.Minute)
	rf := c.RemoteSeries.Last()
	if rf > 0.15 {
		t.Fatalf("oracle remote fraction = %.3f, want ≈0", rf)
	}
}

func TestHaloPopulationSteadyAndChurns(t *testing.T) {
	c := quickCluster(2)
	cfg := quickHalo(1000, 0)
	cfg.TimeScale = 20 // 25min games → 75s; churn visible in minutes
	h := NewHalo(c, cfg)
	h.Start()
	c.Run(10 * time.Minute)
	if h.GamesEnded == 0 || h.PlayersLeft == 0 || h.PlayersJoined == 0 {
		t.Fatalf("no churn: ended=%d left=%d joined=%d", h.GamesEnded, h.PlayersLeft, h.PlayersJoined)
	}
	n := h.LivePlayers()
	if n < 700 || n > 1400 {
		t.Fatalf("population drifted to %d (target 1000)", n)
	}
}

func TestHaloGraphChangeRateAboutOnePercent(t *testing.T) {
	// §6.1: the workload changes about 1% of the communication graph per
	// minute. Game endings/formations drive the change: with 25-minute
	// games, ≈4%/min of games turn over… the paper counts nodes+edges; we
	// check the player-level churn rate is in the right decade.
	c := quickCluster(2)
	cfg := quickHalo(2000, 0)
	h := NewHalo(c, cfg)
	h.Start()
	c.Run(30 * time.Minute)
	// Players finishing a game per minute ≈ inGame/avgGameMin.
	churnPerMin := float64(h.GamesEnded) * 8 / 30
	frac := churnPerMin / float64(h.LivePlayers())
	if frac < 0.005 || frac > 0.15 {
		t.Fatalf("membership churn %.4f/min out of plausible range", frac)
	}
}

func TestCounterWorkload(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.Servers = 1
	c := sim.New(cfg)
	w := NewCounter(c, 100, 500, 5)
	w.Start()
	c.Run(10 * time.Second)
	if c.Completed == 0 {
		t.Fatal("no completions")
	}
	var total uint64
	for i := range w.Actors() {
		total += w.Value(i)
	}
	if total != c.Completed {
		t.Fatalf("counter sum %d != completed %d", total, c.Completed)
	}
}

func TestHeartbeatWorkload(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.Servers = 1
	c := sim.New(cfg)
	w := NewHeartbeat(c, 50, 500, 5)
	w.Start()
	c.Run(10 * time.Second)
	if c.Completed == 0 {
		t.Fatal("no completions")
	}
	var total uint64
	for i := 0; i < 50; i++ {
		total += w.Beats(i)
	}
	if total != c.Completed {
		t.Fatalf("beats %d != completed %d", total, c.Completed)
	}
}

func TestHaloDeterministic(t *testing.T) {
	run := func() (uint64, int) {
		c := quickCluster(3)
		h := NewHalo(c, quickHalo(1000, 100))
		h.Start()
		c.Run(time.Minute)
		return c.Completed, h.GamesFormed
	}
	c1, g1 := run()
	c2, g2 := run()
	if c1 != c2 || g1 != g2 {
		t.Fatalf("non-deterministic: (%d,%d) vs (%d,%d)", c1, g1, c2, g2)
	}
}
