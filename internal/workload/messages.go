package workload

import "actop/internal/codec"

// Wire message types for the real-runtime workloads (presence queries,
// heartbeats, counters), each implementing the codec fast-path interfaces:
// AppendBinary/UnmarshalBinary encode field-by-field with varint
// primitives (no reflection, no gob type descriptors) and CopyValue deep
// copies without any serialization for co-located calls.
//
// The implementations must round-trip identically to the gob fallback —
// messages_test.go property-checks this — which is why zero-length slices
// normalize to nil (gob decodes an empty slice as nil).

// PresenceQuery asks a player actor for its status.
type PresenceQuery struct {
	Player         string
	IncludeMembers bool
}

// AppendBinary implements codec.Marshaler.
func (q PresenceQuery) AppendBinary(dst []byte) ([]byte, error) {
	dst = codec.AppendString(dst, q.Player)
	return codec.AppendBool(dst, q.IncludeMembers), nil
}

// MarshalBinary keeps gob symmetric with UnmarshalBinary: gob treats any
// BinaryUnmarshaler as binary-encoded, so the encode side must match.
func (q PresenceQuery) MarshalBinary() ([]byte, error) { return q.AppendBinary(nil) }

// UnmarshalBinary implements codec.Unmarshaler.
func (q *PresenceQuery) UnmarshalBinary(data []byte) error {
	var err error
	if q.Player, data, err = codec.ReadString(data); err != nil {
		return err
	}
	q.IncludeMembers, _, err = codec.ReadBool(data)
	return err
}

// CopyValue implements codec.Copier.
func (q PresenceQuery) CopyValue() interface{} { return q }

// PresenceStatus is a player actor's answer: its game (if any) and,
// optionally, the other members.
type PresenceStatus struct {
	Player  string
	Game    string
	InGame  bool
	Members []string
}

// AppendBinary implements codec.Marshaler.
func (p PresenceStatus) AppendBinary(dst []byte) ([]byte, error) {
	dst = codec.AppendString(dst, p.Player)
	dst = codec.AppendString(dst, p.Game)
	dst = codec.AppendBool(dst, p.InGame)
	dst = codec.AppendUvarint(dst, uint64(len(p.Members)))
	for _, m := range p.Members {
		dst = codec.AppendString(dst, m)
	}
	return dst, nil
}

// MarshalBinary keeps gob symmetric with UnmarshalBinary: gob treats any
// BinaryUnmarshaler as binary-encoded, so the encode side must match.
func (p PresenceStatus) MarshalBinary() ([]byte, error) { return p.AppendBinary(nil) }

// UnmarshalBinary implements codec.Unmarshaler.
func (p *PresenceStatus) UnmarshalBinary(data []byte) error {
	var err error
	if p.Player, data, err = codec.ReadString(data); err != nil {
		return err
	}
	if p.Game, data, err = codec.ReadString(data); err != nil {
		return err
	}
	if p.InGame, data, err = codec.ReadBool(data); err != nil {
		return err
	}
	var n uint64
	if n, data, err = codec.ReadUvarint(data); err != nil {
		return err
	}
	p.Members = nil
	if n > 0 {
		p.Members = make([]string, 0, n)
		for i := uint64(0); i < n; i++ {
			var m string
			if m, data, err = codec.ReadString(data); err != nil {
				return err
			}
			p.Members = append(p.Members, m)
		}
	}
	return nil
}

// CopyValue implements codec.Copier.
func (p PresenceStatus) CopyValue() interface{} {
	if len(p.Members) == 0 {
		p.Members = nil
		return p
	}
	p.Members = append([]string(nil), p.Members...)
	return p
}

// Beat is one heartbeat update for a monitored entity.
type Beat struct {
	Entity string
	At     int64
	Seq    uint64
}

// AppendBinary implements codec.Marshaler.
func (b Beat) AppendBinary(dst []byte) ([]byte, error) {
	dst = codec.AppendString(dst, b.Entity)
	dst = codec.AppendVarint(dst, b.At)
	return codec.AppendUvarint(dst, b.Seq), nil
}

// MarshalBinary keeps gob symmetric with UnmarshalBinary: gob treats any
// BinaryUnmarshaler as binary-encoded, so the encode side must match.
func (b Beat) MarshalBinary() ([]byte, error) { return b.AppendBinary(nil) }

// UnmarshalBinary implements codec.Unmarshaler.
func (b *Beat) UnmarshalBinary(data []byte) error {
	var err error
	if b.Entity, data, err = codec.ReadString(data); err != nil {
		return err
	}
	if b.At, data, err = codec.ReadVarint(data); err != nil {
		return err
	}
	b.Seq, _, err = codec.ReadUvarint(data)
	return err
}

// CopyValue implements codec.Copier.
func (b Beat) CopyValue() interface{} { return b }

// BeatAck acknowledges a Beat with the entity's running total.
type BeatAck struct {
	Seq   uint64
	Beats uint64
}

// AppendBinary implements codec.Marshaler.
func (a BeatAck) AppendBinary(dst []byte) ([]byte, error) {
	dst = codec.AppendUvarint(dst, a.Seq)
	return codec.AppendUvarint(dst, a.Beats), nil
}

// MarshalBinary keeps gob symmetric with UnmarshalBinary: gob treats any
// BinaryUnmarshaler as binary-encoded, so the encode side must match.
func (a BeatAck) MarshalBinary() ([]byte, error) { return a.AppendBinary(nil) }

// UnmarshalBinary implements codec.Unmarshaler.
func (a *BeatAck) UnmarshalBinary(data []byte) error {
	var err error
	if a.Seq, data, err = codec.ReadUvarint(data); err != nil {
		return err
	}
	a.Beats, _, err = codec.ReadUvarint(data)
	return err
}

// CopyValue implements codec.Copier.
func (a BeatAck) CopyValue() interface{} { return a }

// CounterAdd increments a counter actor.
type CounterAdd struct{ Delta int64 }

// AppendBinary implements codec.Marshaler.
func (c CounterAdd) AppendBinary(dst []byte) ([]byte, error) {
	return codec.AppendVarint(dst, c.Delta), nil
}

// MarshalBinary keeps gob symmetric with UnmarshalBinary: gob treats any
// BinaryUnmarshaler as binary-encoded, so the encode side must match.
func (c CounterAdd) MarshalBinary() ([]byte, error) { return c.AppendBinary(nil) }

// UnmarshalBinary implements codec.Unmarshaler.
func (c *CounterAdd) UnmarshalBinary(data []byte) error {
	var err error
	c.Delta, _, err = codec.ReadVarint(data)
	return err
}

// CopyValue implements codec.Copier.
func (c CounterAdd) CopyValue() interface{} { return c }

// CounterValue is a counter actor's reply.
type CounterValue struct{ N int64 }

// AppendBinary implements codec.Marshaler.
func (c CounterValue) AppendBinary(dst []byte) ([]byte, error) {
	return codec.AppendVarint(dst, c.N), nil
}

// MarshalBinary keeps gob symmetric with UnmarshalBinary: gob treats any
// BinaryUnmarshaler as binary-encoded, so the encode side must match.
func (c CounterValue) MarshalBinary() ([]byte, error) { return c.AppendBinary(nil) }

// UnmarshalBinary implements codec.Unmarshaler.
func (c *CounterValue) UnmarshalBinary(data []byte) error {
	var err error
	c.N, _, err = codec.ReadVarint(data)
	return err
}

// CopyValue implements codec.Copier.
func (c CounterValue) CopyValue() interface{} { return c }
