package workload

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"
	"testing/quick"

	"actop/internal/codec"
)

// Shadow types with identical fields but no methods: gob encodes them by
// pure reflection — the codec's universal fallback — giving an independent
// reference encoding to compare the hand-rolled fast path against.
type (
	plainPresenceQuery struct {
		Player         string
		IncludeMembers bool
	}
	plainPresenceStatus struct {
		Player  string
		Game    string
		InGame  bool
		Members []string
	}
	plainBeat struct {
		Entity string
		At     int64
		Seq    uint64
	}
	plainBeatAck    struct{ Seq, Beats uint64 }
	plainCounterAdd struct{ Delta int64 }
	plainCounterVal struct{ N int64 }
)

// gobRoundTrip pushes v through raw reflection-gob and returns what a
// gob-only peer would decode. ptr must be a pointer to v's type.
func gobRoundTrip(t *testing.T, v, ptr interface{}) interface{} {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		t.Fatalf("gob encode %T: %v", v, err)
	}
	if err := gob.NewDecoder(&buf).Decode(ptr); err != nil {
		t.Fatalf("gob decode %T: %v", v, err)
	}
	return reflect.ValueOf(ptr).Elem().Interface()
}

// fastRoundTrip pushes v through the codec (which picks the AppendBinary
// fast path for these types) and decodes into ptr.
func fastRoundTrip(t *testing.T, v, ptr interface{}) interface{} {
	t.Helper()
	data, err := codec.Marshal(v)
	if err != nil {
		t.Fatalf("codec marshal %T: %v", v, err)
	}
	if err := codec.Unmarshal(data, ptr); err != nil {
		t.Fatalf("codec unmarshal %T: %v", v, err)
	}
	return reflect.ValueOf(ptr).Elem().Interface()
}

// TestFastPathMatchesGobProperty property-checks, for every workload
// message type, that (a) the AppendBinary/UnmarshalBinary round trip
// decodes to exactly what the gob fallback round trip decodes to, and (b)
// CopyValue returns the same value a gob deep copy would.
func TestFastPathMatchesGobProperty(t *testing.T) {
	check := func(name string, f interface{}) {
		t.Run(name, func(t *testing.T) {
			if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
				t.Fatal(err)
			}
		})
	}

	check("PresenceQuery", func(player string, include bool) bool {
		v := PresenceQuery{Player: player, IncludeMembers: include}
		fast := fastRoundTrip(t, v, new(PresenceQuery))
		slow := PresenceQuery(gobRoundTrip(t, plainPresenceQuery(v), new(plainPresenceQuery)).(plainPresenceQuery))
		return reflect.DeepEqual(fast, slow) &&
			reflect.DeepEqual(v.CopyValue(), slow)
	})

	check("PresenceStatus", func(player, game string, inGame bool, members []string) bool {
		v := PresenceStatus{Player: player, Game: game, InGame: inGame, Members: members}
		fast := fastRoundTrip(t, v, new(PresenceStatus))
		slow := PresenceStatus(gobRoundTrip(t, plainPresenceStatus(v), new(plainPresenceStatus)).(plainPresenceStatus))
		return reflect.DeepEqual(fast, slow) &&
			reflect.DeepEqual(v.CopyValue(), slow)
	})

	check("Beat", func(entity string, at int64, seq uint64) bool {
		v := Beat{Entity: entity, At: at, Seq: seq}
		fast := fastRoundTrip(t, v, new(Beat))
		slow := Beat(gobRoundTrip(t, plainBeat(v), new(plainBeat)).(plainBeat))
		return reflect.DeepEqual(fast, slow) &&
			reflect.DeepEqual(v.CopyValue(), slow)
	})

	check("BeatAck", func(seq, beats uint64) bool {
		v := BeatAck{Seq: seq, Beats: beats}
		fast := fastRoundTrip(t, v, new(BeatAck))
		slow := BeatAck(gobRoundTrip(t, plainBeatAck(v), new(plainBeatAck)).(plainBeatAck))
		return reflect.DeepEqual(fast, slow) &&
			reflect.DeepEqual(v.CopyValue(), slow)
	})

	check("CounterAdd", func(delta int64) bool {
		v := CounterAdd{Delta: delta}
		fast := fastRoundTrip(t, v, new(CounterAdd))
		slow := CounterAdd(gobRoundTrip(t, plainCounterAdd(v), new(plainCounterAdd)).(plainCounterAdd))
		return reflect.DeepEqual(fast, slow) &&
			reflect.DeepEqual(v.CopyValue(), slow)
	})

	check("CounterValue", func(n int64) bool {
		v := CounterValue{N: n}
		fast := fastRoundTrip(t, v, new(CounterValue))
		slow := CounterValue(gobRoundTrip(t, plainCounterVal(v), new(plainCounterVal)).(plainCounterVal))
		return reflect.DeepEqual(fast, slow) &&
			reflect.DeepEqual(v.CopyValue(), slow)
	})
}

// TestCopyValueIsolation verifies the fast copy shares no mutable state.
func TestCopyValueIsolation(t *testing.T) {
	orig := PresenceStatus{Player: "p1", Members: []string{"a", "b"}}
	cp := orig.CopyValue().(PresenceStatus)
	cp.Members[0] = "MUTATED"
	if orig.Members[0] != "a" {
		t.Fatalf("CopyValue aliased Members: %+v", orig)
	}
}

// TestFastPathDecodableByGobFallbackPeer checks the tag dispatch: a
// payload produced by a fast-path type decodes through codec.Unmarshal on
// the other side regardless of which concrete decode path runs.
func TestFastPathDecodableByCodec(t *testing.T) {
	in := PresenceStatus{Player: "p9", Game: "g3", InGame: true, Members: []string{"x", "y", "z"}}
	data, err := codec.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out PresenceStatus
	if err := codec.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch: %+v vs %+v", in, out)
	}
}
