package workload

import (
	"os"
	"testing"

	"actop/internal/testutil"
)

// TestMain fails the package if any test leaves a goroutine running.
func TestMain(m *testing.M) {
	os.Exit(testutil.VerifyNoLeaks(m.Run))
}
