// Package workload implements the benchmark applications of §6 on top of
// the cluster simulator: Halo Presence (the game/player presence service),
// Heartbeat (the single-actor monitoring service) and Counter (the
// single-server micro-benchmark of Fig. 4/5).
package workload

import (
	"time"

	"actop/internal/des"
	"actop/internal/sim"
)

// HaloConfig parameterizes the Halo Presence workload exactly as §6.1
// describes it.
type HaloConfig struct {
	// TargetPlayers is the steady-state concurrent player population
	// (paper: 100K; scale down for quick runs).
	TargetPlayers int
	// PlayersPerGame is the game size (paper: 8).
	PlayersPerGame int
	// IdlePoolTarget is the matchmaking pool size (paper: 1000); the pool
	// scales proportionally when TargetPlayers is scaled down.
	IdlePoolTarget int
	// GameMin/GameMax bound the uniformly distributed game duration
	// (paper: 20–30 minutes).
	GameMin, GameMax time.Duration
	// GamesMin/GamesMax bound games played before a player leaves
	// (paper: 3–5).
	GamesMin, GamesMax int
	// RequestRate is the client status-query rate (req/s) over random
	// players (paper: 2K/4K/6K).
	RequestRate float64
	// Prefill creates the initial population at t=0 with randomized game
	// phases, so steady state is immediate rather than after a ramp.
	Prefill bool
	// OraclePlacement co-locates each game's players on one server at
	// formation time — the §3 "most communicating actors co-located"
	// upper-bound configuration.
	OraclePlacement bool
	// TimeScale divides game/sojourn durations to accelerate churn in
	// short runs while preserving the churn *rate* per minute relative to
	// the run length. 1 = paper timing.
	TimeScale int

	Seed int64
}

// DefaultHaloConfig is the paper's configuration scaled to quick runs.
func DefaultHaloConfig() HaloConfig {
	return HaloConfig{
		TargetPlayers:  100_000,
		PlayersPerGame: 8,
		IdlePoolTarget: 1000,
		GameMin:        20 * time.Minute,
		GameMax:        30 * time.Minute,
		GamesMin:       3,
		GamesMax:       5,
		RequestRate:    6000,
		Prefill:        true,
		TimeScale:      1,
		Seed:           7,
	}
}

type playerState struct {
	game      sim.ActorID // 0 when idle
	gamesLeft int
	poolIdx   int // index in idle pool, -1 when not pooled
	allIdx    int // index in the all-players slice
}

type gameState struct {
	members []sim.ActorID
}

// fanout tracks one broadcast's outstanding acknowledgements; it travels in
// message payloads so dropped legs leak nothing into actor state.
type fanout struct {
	remaining int
	origin    sim.ActorID
	req       *sim.Request
}

// Halo drives the presence service on a cluster.
type Halo struct {
	Cfg HaloConfig
	C   *sim.Cluster

	rng *des.Rand

	players []sim.ActorID // all live players
	pool    []sim.ActorID // idle players awaiting a game

	// Stats
	GamesFormed, GamesEnded    int
	PlayersJoined, PlayersLeft int
}

// NewHalo attaches the workload to a cluster (call Start to begin).
func NewHalo(c *sim.Cluster, cfg HaloConfig) *Halo {
	if cfg.PlayersPerGame < 1 {
		cfg.PlayersPerGame = 8
	}
	if cfg.TimeScale < 1 {
		cfg.TimeScale = 1
	}
	h := &Halo{Cfg: cfg, C: c, rng: des.NewRand(cfg.Seed)}
	return h
}

func (h *Halo) scale(d time.Duration) time.Duration {
	return d / time.Duration(h.Cfg.TimeScale)
}

// Start populates the system and installs arrival/matchmaking/request
// timers.
func (h *Halo) Start() {
	if h.Cfg.Prefill {
		for i := 0; i < h.Cfg.TargetPlayers; i++ {
			h.addPlayer()
		}
		h.matchmake(true)
	}
	// Player arrivals keep the population steady: rate = N / mean sojourn.
	meanGames := float64(h.Cfg.GamesMin+h.Cfg.GamesMax) / 2
	meanGame := (h.Cfg.GameMin + h.Cfg.GameMax) / 2
	sojourn := h.scale(time.Duration(meanGames * float64(meanGame)))
	if sojourn > 0 && h.Cfg.TargetPlayers > 0 {
		interarrival := sojourn / time.Duration(h.Cfg.TargetPlayers)
		if interarrival <= 0 {
			interarrival = time.Millisecond
		}
		var arrive func()
		arrive = func() {
			h.addPlayer()
			h.PlayersJoined++
			h.C.K.After(h.rng.Exp(interarrival), arrive)
		}
		h.C.K.After(h.rng.Exp(interarrival), arrive)
	}
	// Matchmaking sweep.
	h.C.K.Every(h.scale(time.Second), 0, func() { h.matchmake(false) })
	// Client status queries.
	if h.Cfg.RequestRate > 0 {
		mean := time.Duration(float64(time.Second) / h.Cfg.RequestRate)
		var query func()
		query = func() {
			if len(h.players) > 0 {
				p := h.players[h.rng.Intn(len(h.players))]
				h.C.SubmitRequest(p, "status", nil, nil)
			}
			h.C.K.After(h.rng.Exp(mean), query)
		}
		h.C.K.After(h.rng.Exp(mean), query)
	}
}

func (h *Halo) addPlayer() {
	st := &playerState{
		gamesLeft: h.Cfg.GamesMin + h.rng.Intn(h.Cfg.GamesMax-h.Cfg.GamesMin+1),
		poolIdx:   -1,
	}
	id := h.C.CreateActor(playerHandler, st)
	st.allIdx = len(h.players)
	h.players = append(h.players, id)
	h.enterPool(id, st)
}

func (h *Halo) enterPool(id sim.ActorID, st *playerState) {
	st.game = 0
	st.poolIdx = len(h.pool)
	h.pool = append(h.pool, id)
}

func (h *Halo) removeFromPool(st *playerState) sim.ActorID {
	i := st.poolIdx
	last := len(h.pool) - 1
	id := h.pool[i]
	h.pool[i] = h.pool[last]
	if moved, ok := h.playerState(h.pool[i]); ok {
		moved.poolIdx = i
	}
	h.pool = h.pool[:last]
	st.poolIdx = -1
	return id
}

func (h *Halo) removePlayer(id sim.ActorID, st *playerState) {
	i := st.allIdx
	last := len(h.players) - 1
	h.players[i] = h.players[last]
	if moved, ok := h.playerState(h.players[i]); ok {
		moved.allIdx = i
	}
	h.players = h.players[:last]
	h.C.DestroyActor(id)
	h.PlayersLeft++
}

func (h *Halo) playerState(id sim.ActorID) (*playerState, bool) {
	st, ok := h.C.ActorState(id).(*playerState)
	return st, ok
}

// matchmake forms games while the idle pool exceeds its target (at prefill,
// down to the target exactly; in steady state the pool hovers around it).
func (h *Halo) matchmake(prefill bool) {
	for len(h.pool) >= h.Cfg.IdlePoolTarget+h.Cfg.PlayersPerGame {
		members := make([]sim.ActorID, 0, h.Cfg.PlayersPerGame)
		for i := 0; i < h.Cfg.PlayersPerGame; i++ {
			idx := h.rng.Intn(len(h.pool))
			st, _ := h.playerState(h.pool[idx])
			members = append(members, h.removeFromPool(st))
		}
		h.formGame(members, prefill)
	}
}

func (h *Halo) formGame(members []sim.ActorID, prefill bool) {
	g := h.C.CreateActor(gameHandler, &gameState{members: members})
	if h.Cfg.OraclePlacement {
		// Co-locate the whole game on the game actor's server.
		if srv, ok := h.C.ServerOf(g); ok {
			for _, m := range members {
				h.C.MoveActor(m, srv)
			}
		}
	}
	for _, m := range members {
		if st, ok := h.playerState(m); ok {
			st.game = g
		}
	}
	h.GamesFormed++
	dur := h.rng.Uniform(h.scale(h.Cfg.GameMin), h.scale(h.Cfg.GameMax))
	if prefill {
		// Randomize the phase so prefilled games don't all end at once.
		dur = h.rng.Uniform(0, h.scale(h.Cfg.GameMax))
	}
	h.C.K.After(dur, func() { h.endGame(g) })
}

func (h *Halo) endGame(g sim.ActorID) {
	gs, ok := h.C.ActorState(g).(*gameState)
	if !ok {
		return
	}
	h.GamesEnded++
	for _, m := range gs.members {
		st, ok := h.playerState(m)
		if !ok {
			continue
		}
		st.game = 0
		st.gamesLeft--
		if st.gamesLeft <= 0 {
			h.removePlayer(m, st)
		} else {
			h.enterPool(m, st)
		}
	}
	h.C.DestroyActor(g)
}

// PoolSize reports the current idle pool population.
func (h *Halo) PoolSize() int { return len(h.pool) }

// LivePlayers reports the current player population.
func (h *Halo) LivePlayers() int { return len(h.players) }

// --- actor handlers (the 18-message broadcast of §3) ---

// playerHandler: a status query goes to the player's game, which broadcasts
// to all members, collects their acks and reports back; idle players answer
// immediately.
func playerHandler(ctx *sim.Ctx, msg *sim.Message) {
	st, _ := ctx.State().(*playerState)
	switch msg.Type {
	case "status":
		if st == nil || st.game == 0 {
			ctx.ReplyToClient(msg.Req)
			return
		}
		ctx.Send(st.game, "broadcast", &fanout{origin: ctx.Self, req: msg.Req}, msg.Req)
	case "update":
		fo := msg.Payload.(*fanout)
		ctx.Send(msg.From, "ack", fo, msg.Req)
	case "done":
		ctx.ReplyToClient(msg.Req)
	}
}

// gameHandler fans a broadcast out to every member and fans acks back in.
func gameHandler(ctx *sim.Ctx, msg *sim.Message) {
	gs, _ := ctx.State().(*gameState)
	switch msg.Type {
	case "broadcast":
		fo := msg.Payload.(*fanout)
		if gs == nil || len(gs.members) == 0 {
			ctx.Send(fo.origin, "done", nil, msg.Req)
			return
		}
		fo.remaining = len(gs.members)
		for _, m := range gs.members {
			ctx.Send(m, "update", fo, msg.Req)
		}
	case "ack":
		fo := msg.Payload.(*fanout)
		fo.remaining--
		if fo.remaining == 0 {
			ctx.Send(fo.origin, "done", nil, msg.Req)
		}
	}
}
