// Package graph provides the weighted actor-communication graph and
// partition-assignment types used by the ActOp partitioning algorithms (§4).
//
// Vertices are actors; an edge weight is proportional to the average number
// of messages exchanged between the two actors (both directions summed — the
// communication cost C of §4.1 is symmetric in who crosses the boundary).
package graph

import (
	"fmt"
	"sort"
)

// Vertex identifies an actor in the communication graph.
type Vertex uint64

// Edge is one weighted undirected edge.
type Edge struct {
	U, V   Vertex
	Weight float64
}

// Graph is a weighted undirected multigraph with O(1) weight accumulation.
// The zero value is not usable; use New.
type Graph struct {
	adj       map[Vertex]map[Vertex]float64
	edgeCount int
	totalW    float64
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{adj: make(map[Vertex]map[Vertex]float64)}
}

// AddVertex ensures v exists (possibly with no edges).
func (g *Graph) AddVertex(v Vertex) {
	if _, ok := g.adj[v]; !ok {
		g.adj[v] = make(map[Vertex]float64)
	}
}

// HasVertex reports whether v is present.
func (g *Graph) HasVertex(v Vertex) bool {
	_, ok := g.adj[v]
	return ok
}

// AddEdge accumulates weight w onto the undirected edge {u,v}.
// Self-loops are ignored (an actor messaging itself never crosses servers).
func (g *Graph) AddEdge(u, v Vertex, w float64) {
	if u == v || w == 0 {
		return
	}
	g.AddVertex(u)
	g.AddVertex(v)
	if _, existed := g.adj[u][v]; !existed {
		g.edgeCount++
	}
	g.adj[u][v] += w
	g.adj[v][u] += w
	g.totalW += w
}

// Weight reports the accumulated weight of edge {u,v} (0 if absent).
func (g *Graph) Weight(u, v Vertex) float64 {
	return g.adj[u][v]
}

// Neighbors calls fn for every neighbor of v with the edge weight.
// Iteration order is unspecified.
func (g *Graph) Neighbors(v Vertex, fn func(u Vertex, w float64)) {
	for u, w := range g.adj[v] {
		fn(u, w)
	}
}

// Degree reports the number of neighbors of v.
func (g *Graph) Degree(v Vertex) int { return len(g.adj[v]) }

// WeightedDegree reports the summed edge weight incident to v.
func (g *Graph) WeightedDegree(v Vertex) float64 {
	var s float64
	for _, w := range g.adj[v] {
		s += w
	}
	return s
}

// RemoveVertex deletes v and all incident edges.
func (g *Graph) RemoveVertex(v Vertex) {
	for u := range g.adj[v] {
		delete(g.adj[u], v)
		g.totalW -= g.adj[v][u]
		g.edgeCount--
	}
	delete(g.adj, v)
}

// NumVertices reports the vertex count.
func (g *Graph) NumVertices() int { return len(g.adj) }

// NumEdges reports the number of distinct undirected edges.
func (g *Graph) NumEdges() int { return g.edgeCount }

// TotalWeight reports the summed weight over all undirected edges.
func (g *Graph) TotalWeight() float64 { return g.totalW }

// Vertices returns all vertices in ascending order (deterministic).
func (g *Graph) Vertices() []Vertex {
	vs := make([]Vertex, 0, len(g.adj))
	for v := range g.adj {
		vs = append(vs, v)
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	return vs
}

// Edges returns all undirected edges once each (U < V), sorted.
func (g *Graph) Edges() []Edge {
	es := make([]Edge, 0, g.edgeCount)
	for u, nbrs := range g.adj {
		for v, w := range nbrs {
			if u < v {
				es = append(es, Edge{U: u, V: v, Weight: w})
			}
		}
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i].U != es[j].U {
			return es[i].U < es[j].U
		}
		return es[i].V < es[j].V
	})
	return es
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := New()
	c.edgeCount = g.edgeCount
	c.totalW = g.totalW
	for v, nbrs := range g.adj {
		m := make(map[Vertex]float64, len(nbrs))
		for u, w := range nbrs {
			m[u] = w
		}
		c.adj[v] = m
	}
	return c
}

// ServerID identifies a server (silo) hosting a subset of actors.
type ServerID int

// Assignment maps every vertex to the server hosting it and maintains
// per-server population counts. The zero value is not usable; use
// NewAssignment.
type Assignment struct {
	home  map[Vertex]ServerID
	count map[ServerID]int
}

// NewAssignment returns an empty assignment over the given servers.
// Servers with no vertices still appear in Counts with count 0.
func NewAssignment(servers ...ServerID) *Assignment {
	a := &Assignment{
		home:  make(map[Vertex]ServerID),
		count: make(map[ServerID]int, len(servers)),
	}
	for _, s := range servers {
		a.count[s] = 0
	}
	return a
}

// Place assigns v to server s, moving it if already placed.
func (a *Assignment) Place(v Vertex, s ServerID) {
	if old, ok := a.home[v]; ok {
		if old == s {
			return
		}
		a.count[old]--
	}
	a.home[v] = s
	a.count[s]++
}

// Remove unassigns v.
func (a *Assignment) Remove(v Vertex) {
	if s, ok := a.home[v]; ok {
		a.count[s]--
		delete(a.home, v)
	}
}

// Server reports the server hosting v.
func (a *Assignment) Server(v Vertex) (ServerID, bool) {
	s, ok := a.home[v]
	return s, ok
}

// Count reports how many vertices server s hosts.
func (a *Assignment) Count(s ServerID) int { return a.count[s] }

// Servers returns all known servers in ascending order.
func (a *Assignment) Servers() []ServerID {
	ss := make([]ServerID, 0, len(a.count))
	for s := range a.count {
		ss = append(ss, s)
	}
	sort.Slice(ss, func(i, j int) bool { return ss[i] < ss[j] })
	return ss
}

// NumVertices reports the number of placed vertices.
func (a *Assignment) NumVertices() int { return len(a.home) }

// VerticesOn returns the vertices hosted by s in ascending order.
func (a *Assignment) VerticesOn(s ServerID) []Vertex {
	var vs []Vertex
	for v, sv := range a.home {
		if sv == s {
			vs = append(vs, v)
		}
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	return vs
}

// Clone returns a deep copy of the assignment.
func (a *Assignment) Clone() *Assignment {
	c := &Assignment{
		home:  make(map[Vertex]ServerID, len(a.home)),
		count: make(map[ServerID]int, len(a.count)),
	}
	for v, s := range a.home {
		c.home[v] = s
	}
	for s, n := range a.count {
		c.count[s] = n
	}
	return c
}

// Imbalance reports max−min population across servers.
func (a *Assignment) Imbalance() int {
	first := true
	var lo, hi int
	for _, n := range a.count {
		if first {
			lo, hi = n, n
			first = false
			continue
		}
		if n < lo {
			lo = n
		}
		if n > hi {
			hi = n
		}
	}
	return hi - lo
}

// CutCost computes the total communication cost C of §4.1: the summed weight
// of edges whose endpoints live on different servers. Unplaced vertices are
// treated as remote to everything.
func CutCost(g *Graph, a *Assignment) float64 {
	var cost float64
	for _, e := range g.Edges() {
		su, okU := a.Server(e.U)
		sv, okV := a.Server(e.V)
		if !okU || !okV || su != sv {
			cost += e.Weight
		}
	}
	return cost
}

// RemoteFraction reports the fraction of edge weight that crosses servers —
// the "proportion of remote messages" series of Fig. 10(a).
func RemoteFraction(g *Graph, a *Assignment) float64 {
	if g.TotalWeight() == 0 {
		return 0
	}
	return CutCost(g, a) / g.TotalWeight()
}

// String renders population counts, e.g. "{0:5 1:5}".
func (a *Assignment) String() string {
	out := "{"
	for i, s := range a.Servers() {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%d:%d", s, a.count[s])
	}
	return out + "}"
}
