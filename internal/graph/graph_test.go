package graph

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAddEdgeAccumulates(t *testing.T) {
	g := New()
	g.AddEdge(1, 2, 3)
	g.AddEdge(2, 1, 2) // same undirected edge
	if w := g.Weight(1, 2); w != 5 {
		t.Fatalf("Weight(1,2) = %v, want 5", w)
	}
	if w := g.Weight(2, 1); w != 5 {
		t.Fatalf("Weight(2,1) = %v, want 5 (symmetric)", w)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
	if g.TotalWeight() != 5 {
		t.Fatalf("TotalWeight = %v, want 5", g.TotalWeight())
	}
}

func TestSelfLoopIgnored(t *testing.T) {
	g := New()
	g.AddEdge(7, 7, 10)
	if g.NumEdges() != 0 || g.TotalWeight() != 0 {
		t.Fatal("self-loops must be ignored")
	}
}

func TestZeroWeightIgnored(t *testing.T) {
	g := New()
	g.AddEdge(1, 2, 0)
	if g.NumEdges() != 0 {
		t.Fatal("zero-weight edges must be ignored")
	}
}

func TestRemoveVertex(t *testing.T) {
	g := New()
	g.AddEdge(1, 2, 3)
	g.AddEdge(1, 3, 4)
	g.AddEdge(2, 3, 5)
	g.RemoveVertex(1)
	if g.HasVertex(1) {
		t.Fatal("vertex 1 still present")
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
	if w := g.Weight(2, 3); w != 5 {
		t.Fatalf("surviving edge weight = %v", w)
	}
	if math.Abs(g.TotalWeight()-5) > 1e-9 {
		t.Fatalf("TotalWeight = %v, want 5", g.TotalWeight())
	}
}

func TestNeighborsAndDegrees(t *testing.T) {
	g := New()
	g.AddEdge(1, 2, 3)
	g.AddEdge(1, 3, 4)
	if g.Degree(1) != 2 || g.Degree(2) != 1 {
		t.Fatalf("degrees: %d, %d", g.Degree(1), g.Degree(2))
	}
	if wd := g.WeightedDegree(1); wd != 7 {
		t.Fatalf("WeightedDegree(1) = %v, want 7", wd)
	}
	seen := map[Vertex]float64{}
	g.Neighbors(1, func(u Vertex, w float64) { seen[u] = w })
	if len(seen) != 2 || seen[2] != 3 || seen[3] != 4 {
		t.Fatalf("Neighbors = %v", seen)
	}
}

func TestEdgesSortedOnce(t *testing.T) {
	g := New()
	g.AddEdge(3, 1, 1)
	g.AddEdge(2, 1, 1)
	g.AddEdge(3, 2, 1)
	es := g.Edges()
	if len(es) != 3 {
		t.Fatalf("Edges len = %d", len(es))
	}
	for i, e := range es {
		if e.U >= e.V {
			t.Errorf("edge %d not canonical: %+v", i, e)
		}
		if i > 0 && (es[i-1].U > e.U || (es[i-1].U == e.U && es[i-1].V > e.V)) {
			t.Errorf("edges not sorted at %d", i)
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	g := New()
	g.AddEdge(1, 2, 3)
	c := g.Clone()
	c.AddEdge(1, 2, 1)
	if g.Weight(1, 2) != 3 {
		t.Fatal("clone mutation leaked into original")
	}
	if c.Weight(1, 2) != 4 {
		t.Fatal("clone did not accumulate")
	}
}

func TestAssignmentPlaceMoveRemove(t *testing.T) {
	a := NewAssignment(0, 1)
	a.Place(10, 0)
	a.Place(11, 0)
	a.Place(10, 1) // move
	if s, _ := a.Server(10); s != 1 {
		t.Fatalf("Server(10) = %v", s)
	}
	if a.Count(0) != 1 || a.Count(1) != 1 {
		t.Fatalf("counts %d/%d", a.Count(0), a.Count(1))
	}
	a.Place(10, 1) // idempotent
	if a.Count(1) != 1 {
		t.Fatal("re-placing on same server changed count")
	}
	a.Remove(10)
	if _, ok := a.Server(10); ok || a.Count(1) != 0 {
		t.Fatal("remove failed")
	}
	a.Remove(10) // no-op
}

func TestAssignmentImbalance(t *testing.T) {
	a := NewAssignment(0, 1, 2)
	for i := 0; i < 5; i++ {
		a.Place(Vertex(i), 0)
	}
	a.Place(100, 1)
	if got := a.Imbalance(); got != 5 {
		t.Fatalf("Imbalance = %d, want 5 (5 vs 0)", got)
	}
}

func TestCutCostAndRemoteFraction(t *testing.T) {
	g := New()
	g.AddEdge(1, 2, 10) // same server
	g.AddEdge(2, 3, 4)  // crossing
	a := NewAssignment(0, 1)
	a.Place(1, 0)
	a.Place(2, 0)
	a.Place(3, 1)
	if c := CutCost(g, a); c != 4 {
		t.Fatalf("CutCost = %v, want 4", c)
	}
	if rf := RemoteFraction(g, a); math.Abs(rf-4.0/14.0) > 1e-9 {
		t.Fatalf("RemoteFraction = %v", rf)
	}
}

func TestCutCostUnplacedIsRemote(t *testing.T) {
	g := New()
	g.AddEdge(1, 2, 3)
	a := NewAssignment(0)
	a.Place(1, 0)
	// 2 unplaced.
	if c := CutCost(g, a); c != 3 {
		t.Fatalf("CutCost = %v, want 3", c)
	}
}

func TestRingFixture(t *testing.T) {
	g := Ring(10)
	if g.NumVertices() != 10 || g.NumEdges() != 10 {
		t.Fatalf("ring: %d vertices, %d edges", g.NumVertices(), g.NumEdges())
	}
	for _, v := range g.Vertices() {
		if g.Degree(v) != 2 {
			t.Fatalf("ring vertex %d degree %d", v, g.Degree(v))
		}
	}
}

func TestCliquesFixture(t *testing.T) {
	g := Cliques(3, 4, 2)
	if g.NumVertices() != 12 {
		t.Fatalf("vertices = %d", g.NumVertices())
	}
	wantEdges := 3 * (4 * 3 / 2)
	if g.NumEdges() != wantEdges {
		t.Fatalf("edges = %d, want %d", g.NumEdges(), wantEdges)
	}
	// No cross-clique edges.
	for _, e := range g.Edges() {
		if int(e.U)/4 != int(e.V)/4 {
			t.Fatalf("cross-clique edge %+v", e)
		}
	}
}

func TestNoisyCliquesHasCrossEdges(t *testing.T) {
	g := NoisyCliques(4, 5, 10, 0.1, 50, 1)
	var crossing int
	for _, e := range g.Edges() {
		if int(e.U)/5 != int(e.V)/5 {
			crossing++
		}
	}
	if crossing == 0 {
		t.Fatal("expected some cross-clique noise edges")
	}
}

func TestBlockAssignmentOracleOnCliques(t *testing.T) {
	g := Cliques(4, 5, 1) // 20 vertices
	servers := []ServerID{0, 1}
	a := BlockAssignment(g, servers)
	if CutCost(g, a) != 0 {
		t.Fatalf("block assignment should have zero cut on aligned cliques, got %v", CutCost(g, a))
	}
	if a.Count(0) != 10 || a.Count(1) != 10 {
		t.Fatalf("counts %d/%d", a.Count(0), a.Count(1))
	}
}

func TestRandomAssignmentBalanced(t *testing.T) {
	g := Random(1000, 0, 1, 1)
	servers := []ServerID{0, 1, 2, 3}
	a := RandomAssignment(g, servers, 42)
	if a.NumVertices() != 1000 {
		t.Fatalf("placed %d", a.NumVertices())
	}
	for _, s := range servers {
		if c := a.Count(s); c < 150 || c > 350 {
			t.Errorf("server %d count %d badly imbalanced", s, c)
		}
	}
}

func TestHashAssignmentDeterministic(t *testing.T) {
	g := Random(100, 0, 1, 2)
	servers := []ServerID{0, 1, 2}
	a := HashAssignment(g, servers)
	b := HashAssignment(g, servers)
	for _, v := range g.Vertices() {
		sa, _ := a.Server(v)
		sb, _ := b.Server(v)
		if sa != sb {
			t.Fatalf("hash assignment not deterministic for %d", v)
		}
		if sa != ServerID(uint64(v)%3) {
			t.Fatalf("hash assignment wrong server for %d: %d", v, sa)
		}
	}
}

func TestCutCostNonNegativeProperty(t *testing.T) {
	f := func(seed int64, edges uint8) bool {
		g := Random(20, int(edges), 5, seed)
		a := RandomAssignment(g, []ServerID{0, 1, 2}, seed+1)
		c := CutCost(g, a)
		return c >= 0 && c <= g.TotalWeight()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAssignmentCloneIndependent(t *testing.T) {
	a := NewAssignment(0, 1)
	a.Place(1, 0)
	c := a.Clone()
	c.Place(1, 1)
	if s, _ := a.Server(1); s != 0 {
		t.Fatal("clone mutation leaked")
	}
}

func TestAssignmentString(t *testing.T) {
	a := NewAssignment(0, 1)
	a.Place(5, 0)
	if got := a.String(); got != "{0:1 1:0}" {
		t.Fatalf("String = %q", got)
	}
}
