package graph

import "math/rand"

// Fixture generators produce deterministic test graphs shaped like the
// workloads the paper targets: tight communication cliques (games/chat
// rooms) connected by a sparse background of cross-clique chatter.

// Ring returns a cycle of n vertices with unit edge weights.
func Ring(n int) *Graph {
	g := New()
	for i := 0; i < n; i++ {
		g.AddEdge(Vertex(i), Vertex((i+1)%n), 1)
	}
	return g
}

// Cliques returns k disjoint cliques of size m with intra-clique weight w.
// Vertex c*m+i belongs to clique c.
func Cliques(k, m int, w float64) *Graph {
	g := New()
	for c := 0; c < k; c++ {
		base := c * m
		for i := 0; i < m; i++ {
			g.AddVertex(Vertex(base + i))
			for j := i + 1; j < m; j++ {
				g.AddEdge(Vertex(base+i), Vertex(base+j), w)
			}
		}
	}
	return g
}

// NoisyCliques returns k cliques of size m (intra weight heavy) plus extra
// random cross-clique edges of weight light, mimicking a presence/chat
// service where games dominate but players also ping strangers.
func NoisyCliques(k, m int, heavy, light float64, crossEdges int, seed int64) *Graph {
	g := Cliques(k, m, heavy)
	rng := rand.New(rand.NewSource(seed))
	n := k * m
	for e := 0; e < crossEdges; e++ {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u/m == v/m { // same clique — skip, we want crossing noise
			continue
		}
		g.AddEdge(Vertex(u), Vertex(v), light)
	}
	return g
}

// Random returns an Erdős–Rényi-style graph with n vertices and e random
// edges of weight drawn uniformly from (0, maxW].
func Random(n, e int, maxW float64, seed int64) *Graph {
	g := New()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		g.AddVertex(Vertex(i))
	}
	for k := 0; k < e; k++ {
		u := Vertex(rng.Intn(n))
		v := Vertex(rng.Intn(n))
		if u == v {
			continue
		}
		g.AddEdge(u, v, rng.Float64()*maxW+1e-9)
	}
	return g
}

// RandomAssignment places every vertex of g uniformly at random on one of
// the servers — Orleans's default placement policy (§3).
func RandomAssignment(g *Graph, servers []ServerID, seed int64) *Assignment {
	rng := rand.New(rand.NewSource(seed))
	a := NewAssignment(servers...)
	for _, v := range g.Vertices() {
		a.Place(v, servers[rng.Intn(len(servers))])
	}
	return a
}

// HashAssignment places every vertex on servers[v mod n] — the consistent-
// hashing-style placement of key-value stores (§1).
func HashAssignment(g *Graph, servers []ServerID) *Assignment {
	a := NewAssignment(servers...)
	n := uint64(len(servers))
	for _, v := range g.Vertices() {
		a.Place(v, servers[uint64(v)%n])
	}
	return a
}

// BlockAssignment places contiguous vertex ranges on each server — the
// oracle placement for Cliques fixtures when m divides the block size.
func BlockAssignment(g *Graph, servers []ServerID) *Assignment {
	a := NewAssignment(servers...)
	vs := g.Vertices()
	per := (len(vs) + len(servers) - 1) / len(servers)
	for i, v := range vs {
		a.Place(v, servers[i/per])
	}
	return a
}
