package main

// The workloads subcommand (ISSUE 7): run every built-in workload spec
// through both interpreters — the discrete-event simulator and a real
// in-process loopback-TCP cluster — conformance-check the pair, and record
// the results as BENCH_workloads.json. Each scenario also gets a COST
// baseline (same spec, one node, GOMAXPROCS=1) so the artifact states what
// a single thread achieves before any distribution is credited.

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"actop/internal/actor"
	"actop/internal/loadgen"
	"actop/internal/transport"
	"actop/internal/workload/spec"
)

// wlBackend is one backend's measurement of one scenario, as reported.
type wlBackend struct {
	OpsPerSec     float64 `json:"ops_per_sec"`
	Amplification float64 `json:"calls_per_op"`
	Submitted     uint64  `json:"submitted"`
	Completed     uint64  `json:"completed"`
	P50Micros     float64 `json:"p50_us"`
	P99Micros     float64 `json:"p99_us"`
}

func wlSummarize(r *spec.Result) wlBackend {
	return wlBackend{
		OpsPerSec:     r.OpsPerSec(),
		Amplification: r.Amplification(),
		Submitted:     r.Submitted,
		Completed:     r.Completed,
		P50Micros:     float64(r.Latency.Quantile(0.50)) / 1e3,
		P99Micros:     float64(r.Latency.Quantile(0.99)) / 1e3,
	}
}

// wlScenario is one row of BENCH_workloads.json.
type wlScenario struct {
	Name          string     `json:"name"`
	Description   string     `json:"description"`
	DES           wlBackend  `json:"des"`
	Real          wlBackend  `json:"real"`
	Cost          *wlBackend `json:"cost_gomaxprocs1,omitempty"`
	SpeedupVsCost float64    `json:"speedup_vs_cost,omitempty"`
	Violations    []string   `json:"violations,omitempty"`
	Conforms      bool       `json:"conforms"`
}

type wlReport struct {
	Generated  string       `json:"generated"`
	Cores      int          `json:"cores"`
	GoVersion  string       `json:"go_version"`
	Scale      float64      `json:"scale"`
	Nodes      int          `json:"nodes"`
	Note       string       `json:"note"`
	Scenarios  []wlScenario `json:"scenarios"`
	RankErrors []string     `json:"rank_errors,omitempty"`
}

// wlCluster stands up n real nodes over loopback TCP and returns them plus
// a teardown closure.
func wlCluster(n, workers int, seed int64) ([]*actor.System, func()) {
	trs := make([]transport.Transport, n)
	peers := make([]transport.NodeID, n)
	for i := range trs {
		tr, err := transport.ListenTCP("127.0.0.1:0")
		if err != nil {
			fatalf("workloads: listen: %v", err)
		}
		trs[i] = tr
		peers[i] = tr.Node()
	}
	systems := make([]*actor.System, n)
	for i := range trs {
		sys, err := actor.NewSystem(actor.Config{
			Transport: trs[i], Peers: peers,
			Workers: workers, Seed: seed + int64(i),
			CallTimeout: 30 * time.Second,
		})
		if err != nil {
			fatalf("workloads: node %d: %v", i, err)
		}
		systems[i] = sys
	}
	return systems, func() {
		for _, sys := range systems {
			sys.Stop()
		}
	}
}

// wlRunReal drives one scenario against a fresh real cluster.
func wlRunReal(sc *spec.Scenario, nodes, workers int) (*spec.Result, error) {
	systems, stop := wlCluster(nodes, workers, 11)
	defer stop()
	runner, err := loadgen.New(&sc.Spec, systems)
	if err != nil {
		return nil, err
	}
	return runner.Run(loadgen.Options{})
}

func runWorkloadsBench(args []string) {
	fs := flag.NewFlagSet("workloads", flag.ExitOnError)
	var (
		smoke = fs.Bool("smoke", false, "short conformance check: half scale, no COST baseline")
		scale = fs.Float64("scale", 1, "population/rate scale applied to every scenario")
		nodes = fs.Int("nodes", 3, "real-cluster node count")
		out   = fs.String("out", "BENCH_workloads.json", "result file (\"-\" = stdout only)")
		cost  = fs.Bool("cost", true, "also run the GOMAXPROCS=1 COST baseline per scenario")
	)
	fs.Parse(args)
	if *smoke {
		*scale = *scale / 2
		*cost = false
	}

	report := wlReport{
		Generated: time.Now().UTC().Format(time.RFC3339),
		Cores:     runtime.NumCPU(),
		GoVersion: runtime.Version(),
		Scale:     *scale,
		Nodes:     *nodes,
		Note: "Each scenario runs the same precomputed schedule through the DES and a real " +
			"loopback-TCP cluster; conformance = invariants on both plus throughput/amplification " +
			"agreement within the scenario's tolerance. COST baseline = same spec, one node, " +
			"GOMAXPROCS=1 (one OS thread, full worker pool). Open-loop runs that keep up with " +
			"the schedule report speedup ≈ 1 by construction; the latency quantiles carry the " +
			"contention signal.",
	}

	scenarios := spec.Scenarios(*scale)
	names := make([]string, 0, len(scenarios))
	desMed := make([]time.Duration, 0, len(scenarios))
	realMed := make([]time.Duration, 0, len(scenarios))
	failed := false

	for i := range scenarios {
		sc := &scenarios[i]
		fmt.Printf("=== workload %s ===\n", sc.Spec.Name)
		row := wlScenario{Name: sc.Spec.Name, Description: sc.Spec.Description}

		desRun, err := spec.RunDES(&sc.Spec, spec.DESOptions{Servers: *nodes})
		if err != nil {
			fatalf("workloads: %s DES: %v", sc.Spec.Name, err)
		}
		des := &desRun.Result
		row.DES = wlSummarize(des)

		real, err := wlRunReal(sc, *nodes, 16)
		if err != nil {
			fatalf("workloads: %s real: %v", sc.Spec.Name, err)
		}
		row.Real = wlSummarize(real)

		var viol []error
		viol = append(viol, des.CheckInvariants(&sc.Spec)...)
		viol = append(viol, real.CheckInvariants(&sc.Spec)...)
		viol = append(viol, spec.Compare(&sc.Spec, des, real, sc.Tol)...)
		for _, v := range viol {
			row.Violations = append(row.Violations, v.Error())
			fmt.Printf("  VIOLATION: %v\n", v)
		}
		row.Conforms = len(viol) == 0
		if !row.Conforms {
			failed = true
		}

		if *cost {
			// One node, one OS thread, same worker-pool config: fan-out
			// trees hold a worker per in-flight hop, so the pool must stay
			// deep enough to execute nested turns — COST pins the hardware,
			// not the software.
			prev := runtime.GOMAXPROCS(1)
			costRes, err := wlRunReal(sc, 1, 16)
			runtime.GOMAXPROCS(prev)
			if err != nil {
				fatalf("workloads: %s COST: %v", sc.Spec.Name, err)
			}
			c := wlSummarize(costRes)
			row.Cost = &c
			if c.OpsPerSec > 0 {
				row.SpeedupVsCost = row.Real.OpsPerSec / c.OpsPerSec
			}
		}

		fmt.Printf("DES  %7.1f ops/s  %5.2f calls/op  p50 %6.0fµs  p99 %6.0fµs\n",
			row.DES.OpsPerSec, row.DES.Amplification, row.DES.P50Micros, row.DES.P99Micros)
		fmt.Printf("real %7.1f ops/s  %5.2f calls/op  p50 %6.0fµs  p99 %6.0fµs",
			row.Real.OpsPerSec, row.Real.Amplification, row.Real.P50Micros, row.Real.P99Micros)
		if row.Cost != nil {
			fmt.Printf("  (COST %.1f ops/s, %.2f× speedup)", row.Cost.OpsPerSec, row.SpeedupVsCost)
		}
		if row.Conforms {
			fmt.Printf("  conforms ✓\n")
		} else {
			fmt.Printf("  CONFORMANCE FAILED\n")
		}

		report.Scenarios = append(report.Scenarios, row)
		names = append(names, sc.Spec.Name)
		desMed = append(desMed, des.Latency.Quantile(0.5))
		realMed = append(realMed, real.Latency.Quantile(0.5))
	}

	// Cross-scenario latency-shape check: every pair the DES clearly
	// separates must rank the same way on the real cluster.
	for _, err := range spec.RankCheck(names, desMed, realMed, 3) {
		report.RankErrors = append(report.RankErrors, err.Error())
		fmt.Printf("RANK VIOLATION: %v\n", err)
		failed = true
	}

	if *out != "-" {
		data, _ := json.MarshalIndent(report, "", "  ")
		data = append(data, '\n')
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fatalf("write %s: %v", *out, err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
	if failed {
		fatalf("workloads: conformance failed")
	}
	fmt.Println("all scenarios conform ✓")
}
