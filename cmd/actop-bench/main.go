// Command actop-bench regenerates every table and figure of the paper's
// evaluation. Each subcommand reproduces one experiment and prints the same
// rows/series the paper reports, annotated with the paper's numbers for
// side-by-side comparison.
//
// Usage:
//
//	actop-bench [flags] <experiment>
//
// Experiments: section3, fig4, fig5, fig7, fig10a, fig10b (alias fig10c),
// fig10d (alias fig10e), fig10f, fig11a, fig11b, throughput, all. Two extra
// subcommands target the real runtime instead of a paper figure: msgplane
// micro-benchmarks the message plane (codec, TCP transport, local/remote
// calls), and trace prints a live three-node cluster's end-to-end latency
// decomposition assembled from hop-carried call tracing. The workloads
// subcommand runs the declarative workload-spec library through both the
// simulator and a real loopback-TCP cluster, cross-checks the two, and
// writes BENCH_workloads.json. The recovery subcommand measures durable
// snapshot overhead and time-to-recover after a node kill, and writes
// BENCH_recovery.json.
//
// By default experiments run at "quick" scale — the same per-server
// operating point as the paper (load/server, CPU utilization) with a
// smaller population and shorter runs, finishing in minutes. -full restores
// paper scale (100K players, 10 servers, 6K req/s, hour-long runs); -players,
// -servers, -load, -measure, -warmup override individual knobs.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"actop/internal/experiments"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "cluster-worker":
			// Hidden mode: one node of the cluster scale benchmark,
			// re-execed by "actop-bench cluster".
			runClusterWorker()
			return
		case "cluster":
			runClusterBench(os.Args[2:])
			return
		case "workloads":
			runWorkloadsBench(os.Args[2:])
			return
		case "recovery":
			runRecoveryBench(os.Args[2:])
			return
		case "top":
			runTopCmd(os.Args[2:])
			return
		}
	}
	var (
		full    = flag.Bool("full", false, "paper scale (100K players, 10 servers, 6K req/s, long runs)")
		players = flag.Int("players", 0, "override concurrent players")
		servers = flag.Int("servers", 0, "override server count")
		load    = flag.Float64("load", 0, "override request rate (req/s)")
		warmup  = flag.Duration("warmup", 0, "override warm-up duration")
		measure = flag.Duration("measure", 0, "override measurement duration")
		seed    = flag.Int64("seed", 1, "simulation seed")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		usage()
		os.Exit(2)
	}

	base := experiments.DefaultHaloOpts()
	base.FastControl = true
	base.Seed = *seed
	loads := []float64{600, 1200, 1800} // per the 3-server quick scale
	throughputLoads := []float64{1800, 2400, 3000, 3600, 4200}
	playerSweep := []int{2000, 6000, 20000}
	gridW := []int{2, 3, 4, 5, 6, 7, 8}
	gridS := []int{2, 3, 4, 5, 6, 7, 8}

	if *full {
		base = experiments.HaloOpts{
			Players: 100_000,
			Servers: 10,
			Load:    6000,
			Warmup:  10 * time.Minute,
			Measure: 50 * time.Minute,
			Seed:    *seed,
		}
		loads = []float64{2000, 4000, 6000}
		throughputLoads = []float64{6000, 8000, 10000, 12000, 14000}
		playerSweep = []int{10_000, 100_000, 1_000_000}
	}
	if *players > 0 {
		base.Players = *players
	}
	if *servers > 0 {
		base.Servers = *servers
	}
	if *load > 0 {
		base.Load = *load
	}
	if *warmup > 0 {
		base.Warmup = *warmup
	}
	if *measure > 0 {
		base.Measure = *measure
	}

	counterOpts := experiments.DefaultCounterOpts()
	counterOpts.Seed = *seed
	hbOpts := experiments.DefaultHeartbeatOpts()
	hbOpts.Seed = *seed
	hbLoads := []float64{10000, 12500, 15000}
	if *measure > 0 {
		counterOpts.Measure = *measure
		hbOpts.Measure = *measure
	}

	run := func(name string) {
		start := time.Now()
		fmt.Printf("=== %s ===\n", name)
		switch name {
		case "section3":
			fmt.Print(experiments.RunSection3(base).Render())
		case "fig4":
			fmt.Print(experiments.RunFig4(counterOpts).Render())
		case "fig5":
			fmt.Print(experiments.RunFig5(counterOpts, gridW, gridS).Render())
		case "fig7":
			o := experiments.DefaultFig7Opts()
			o.Seed = *seed
			fmt.Print(experiments.RunFig7(o).Render())
		case "fig10a":
			o := base
			if !*full {
				o.Warmup = 6 * time.Minute // show the convergence transient
				o.Measure = 2 * time.Minute
			}
			fmt.Print(experiments.RunFig10a(o).Render())
		case "fig10b", "fig10c", "fig10bc":
			fmt.Print(experiments.RunFig10bc(base).Render())
		case "fig10d", "fig10e", "fig10de":
			fmt.Print(experiments.RunFig10de(base, loads).Render())
		case "fig10f":
			fmt.Print(experiments.RunFig10f(base, playerSweep).Render())
		case "fig11a":
			fmt.Print(experiments.RunFig11a(hbOpts, hbLoads).Render())
		case "fig11b":
			fmt.Print(experiments.RunFig11b(base).Render())
		case "throughput":
			fmt.Print(experiments.RunThroughput(base, throughputLoads).Render())
		case "msgplane":
			runMsgPlane(*measure)
		case "trace":
			runTraceBench(*measure)
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
			usage()
			os.Exit(2)
		}
		fmt.Printf("--- %s done in %v ---\n\n", name, time.Since(start).Round(time.Second))
	}

	target := strings.ToLower(flag.Arg(0))
	if target == "all" {
		for _, name := range []string{
			"section3", "fig4", "fig5", "fig7", "fig10a", "fig10b",
			"fig10d", "fig10f", "fig11a", "fig11b", "throughput",
		} {
			run(name)
		}
		return
	}
	run(target)
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: actop-bench [flags] <experiment>

experiments:
  section3    §3 motivation: random vs co-located placement
  fig4        latency breakdown across SEDA stages/queues
  fig5        thread-allocation heat map (+ controller pick)
  fig7        queue-length controller instability vs model controller
  fig10a      partitioning convergence over time
  fig10b      end-to-end & server-to-server latency CDFs (also fig10c)
  fig10d      latency improvement & CPU by load (also fig10e)
  fig10f      improvement vs number of live players
  fig11a      thread-allocation-only improvement (heartbeat)
  fig11b      combined optimizations
  throughput  peak throughput baseline vs ActOp
  msgplane    real-runtime message-plane micro-benchmarks (codec/TCP/calls)
  trace       live-cluster latency decomposition from hop-carried tracing
  cluster     multi-process loopback-TCP cluster at 100K–1M live actors
              (own flags; see actop-bench cluster -h)
  workloads   declarative workload specs through DES and a real cluster,
              conformance-checked, with GOMAXPROCS=1 COST baselines
              (own flags; see actop-bench workloads -h)
  recovery    durable-snapshot overhead at 0/1/2 replicas and time to
              recover 10K durable actors after a node kill
              (own flags; see actop-bench recovery -h)
  all         every figure above (not msgplane/trace/cluster)

flags:`)
	flag.PrintDefaults()
}
