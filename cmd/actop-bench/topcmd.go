package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"actop/internal/hotspot"
)

// The top subcommand is a live cluster hot-actor view, `top` for actors: it
// polls a node's /debug/actop/hotspots debug endpoint (cluster-assembled by
// default) and renders the ranked table in place. Point it at any node's
// -debug address; the node fans the query out to its peers.

// topPayload mirrors cmd/actopd's hotspotsPayload (kept separate so the two
// binaries share only the wire shape, not code).
type topPayload struct {
	Node    string          `json:"node"`
	Cluster bool            `json:"cluster"`
	Tracked int             `json:"tracked"`
	Top     []hotspot.Entry `json:"top"`
}

func runTopCmd(args []string) {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:6060", "debug address of any cluster node (its actopd -debug value)")
	n := fs.Int("n", 20, "rows to show")
	interval := fs.Duration("interval", 2*time.Second, "refresh period")
	once := fs.Bool("once", false, "print one table and exit (no screen clearing)")
	local := fs.Bool("local", false, "show only the contacted node's actors (skip cluster assembly)")
	_ = fs.Parse(args)

	url := fmt.Sprintf("http://%s/debug/actop/hotspots?n=%d", *addr, *n)
	if !*local {
		url += "&cluster=1"
	}
	client := &http.Client{Timeout: 10 * time.Second}
	for {
		p, err := fetchTop(client, url)
		if err != nil {
			fatalf("top: %v", err)
		}
		if !*once {
			fmt.Print("\x1b[H\x1b[2J") // cursor home + clear screen
		}
		renderTop(p)
		if *once {
			return
		}
		time.Sleep(*interval)
	}
}

func fetchTop(client *http.Client, url string) (*topPayload, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: HTTP %d", url, resp.StatusCode)
	}
	var p topPayload
	if err := json.NewDecoder(resp.Body).Decode(&p); err != nil {
		return nil, fmt.Errorf("%s: %w", url, err)
	}
	return &p, nil
}

func renderTop(p *topPayload) {
	scope := "cluster"
	if !p.Cluster {
		scope = "node " + p.Node
	}
	fmt.Fprintf(os.Stdout, "actop hot actors — %s (via %s, %s tracked locally)\n",
		scope, p.Node, fmt.Sprintf("%d", p.Tracked))
	fmt.Fprintf(os.Stdout, "%4s  %-14s %-28s %10s %8s %10s %10s %8s %6s\n",
		"RANK", "NODE", "ACTOR", "COST", "TURNS", "EXEC_MS", "WAIT_MS", "IN_KB", "MIGR")
	for i, e := range p.Top {
		fmt.Fprintf(os.Stdout, "%4d  %-14s %-28s %10d %8d %10.1f %10.1f %8.1f %6d\n",
			i+1, e.Node, e.Actor, e.Cost, e.Turns,
			float64(e.ExecNs)/1e6, float64(e.WaitNs)/1e6,
			float64(e.BytesIn)/1024, e.Migrations)
	}
	if len(p.Top) == 0 {
		fmt.Fprintln(os.Stdout, "  (no hot actors — profiler disabled or no traffic yet)")
	}
}
