package main

// The recovery subcommand (ISSUE 8): measure what durability costs and
// what it buys. Part one sweeps the snapshot plane's hot-path overhead at
// 0/1/2 replicas on an identical 3-node topology (median per-call latency
// over interleaved rounds, plus snapshot ship throughput). Part two
// hard-kills a node under a population of durable actors and times how
// long until every victim-hosted actor answers with its pre-crash state
// restored. Results land in BENCH_recovery.json.

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"actop/internal/actor"
	"actop/internal/codec"
	"actop/internal/transport"
)

// recActor is the durable unit of account for the benchmark: one int of
// state, snapshotted via the Copier fast path (struct copy under the turn
// lock, encode on the snapshotter pool).
type recActor struct{ N int }

func (a *recActor) Receive(ctx *actor.Context, method string, args []byte) ([]byte, error) {
	switch method {
	case "add":
		a.N++
		return codec.Marshal(a.N)
	case "get":
		return codec.Marshal(a.N)
	case "where":
		return codec.Marshal(string(ctx.Node()))
	}
	return nil, fmt.Errorf("recovery: no method %q", method)
}

func (a *recActor) Snapshot() ([]byte, error) { return codec.Marshal(a.N) }
func (a *recActor) Restore(data []byte) error { return codec.Unmarshal(data, &a.N) }
func (a *recActor) CopyValue() interface{}    { return &recActor{N: a.N} }
func (a *recActor) DurableActor()             {}

// recOverheadRow is one replica level of the hot-path sweep.
type recOverheadRow struct {
	Replicas     int     `json:"replicas"`
	PerCallUs    float64 `json:"per_call_us"`
	RatioVsOff   float64 `json:"ratio_vs_off"`
	Captured     uint64  `json:"snapshots_captured"`
	Shipped      uint64  `json:"snapshots_shipped"`
	ShippedBytes uint64  `json:"shipped_bytes"`
	ShipMBPerSec float64 `json:"ship_mb_per_s"`
}

// recRecoveryRow is one replica level of the kill-and-recover experiment.
type recRecoveryRow struct {
	Replicas           int     `json:"replicas"`
	Actors             int     `json:"actors"`
	VictimActors       int     `json:"victim_actors"`
	SyncMillis         float64 `json:"snapshot_sync_ms"`
	DetectMillis       float64 `json:"death_detect_ms"`
	RecoverMillis      float64 `json:"recover_all_ms"`
	ActorsPerSec       float64 `json:"recovered_actors_per_s"`
	RecoveredWithState uint64  `json:"recovered_with_state"`
	StateLost          int     `json:"state_lost"`
}

type recReport struct {
	Generated string           `json:"generated"`
	Cores     int              `json:"cores"`
	GoVersion string           `json:"go_version"`
	Note      string           `json:"note"`
	Overhead  []recOverheadRow `json:"overhead"`
	Recovery  []recRecoveryRow `json:"recovery"`
}

// recCall is Call with client-side resubmission: the runtime sheds load
// rather than queueing unboundedly and gives up a call once its timeout
// budget is spent, so a bench driver hammering a recovering cluster must
// do what a real client does — back off and submit again (the callee's
// dedup window keeps re-submissions at-most-once per turn).
func recCall(sys *actor.System, ref actor.Ref, method string, out interface{}) error {
	for attempt := 0; ; attempt++ {
		err := sys.Call(ref, method, nil, out)
		switch {
		case err == nil:
			return nil
		case errors.Is(err, actor.ErrOverloaded),
			errors.Is(err, actor.ErrTimeout),
			// The retry-safe pause: a replica needed for recovery is
			// unreachable right now, and the runtime refuses to resurrect
			// the actor with amnesia. The client's job is to keep asking.
			errors.Is(err, actor.ErrPeerDown):
			time.Sleep(time.Duration(attempt+1) * time.Millisecond)
		default:
			return err
		}
	}
}

// recCluster stands up n in-memory nodes wrapped in Flaky transports (so
// the recovery experiment can hard-kill one) with a fast failure detector.
func recCluster(n, replicas int) ([]*actor.System, []*transport.Flaky, func()) {
	net := transport.NewNetwork(0)
	peers := make([]transport.NodeID, n)
	flakies := make([]*transport.Flaky, n)
	for i := 0; i < n; i++ {
		peers[i] = transport.NodeID(fmt.Sprintf("rec-%d", i))
		flakies[i] = transport.NewFlaky(net.Join(peers[i]), int64(4000+i))
	}
	systems := make([]*actor.System, n)
	for i := 0; i < n; i++ {
		sys, err := actor.NewSystem(actor.Config{
			Transport: flakies[i], Peers: peers,
			Workers: 16, Seed: int64(7 + i),
			CallTimeout:       30 * time.Second,
			HeartbeatInterval: 50 * time.Millisecond,
			SuspectAfter:      2,
			DeadAfter:         5,
			RetryBackoff:      5 * time.Millisecond,
			DurableReplicas:   replicas,
		})
		if err != nil {
			fatalf("recovery: node %d: %v", i, err)
		}
		sys.RegisterType("rec", func() actor.Actor { return &recActor{} })
		systems[i] = sys
	}
	return systems, flakies, func() {
		for _, sys := range systems {
			sys.Stop()
		}
	}
}

// recOverhead measures median per-call latency and ship throughput at one
// replica level: `actors` durable actors on a 3-node cluster, `rounds`
// interleaved rounds of `calls` calls each. The caller interleaves levels
// itself by invoking this once per level — on a loaded machine the median
// over rounds absorbs scheduler noise (min-of-N flaked on 1-core boxes).
func recOverhead(replicas, actors, calls, rounds int) recOverheadRow {
	systems, _, stop := recCluster(3, replicas)
	defer stop()
	ref := func(k int) actor.Ref {
		return actor.Ref{Type: "rec", Key: fmt.Sprintf("ov-%d", k)}
	}
	for k := 0; k < actors; k++ {
		if err := systems[0].Call(ref(k), "add", nil, nil); err != nil {
			fatalf("recovery: warm %d: %v", k, err)
		}
	}
	round := func() time.Duration {
		start := time.Now()
		for c := 0; c < calls; c++ {
			if err := systems[0].Call(ref(c%actors), "add", nil, nil); err != nil {
				fatalf("recovery: call: %v", err)
			}
		}
		return time.Since(start)
	}
	durs := make([]time.Duration, 0, rounds)
	t0 := time.Now()
	for r := 0; r < rounds; r++ {
		durs = append(durs, round())
	}
	elapsed := time.Since(t0)
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	med := durs[len(durs)/2]

	var row recOverheadRow
	row.Replicas = replicas
	row.PerCallUs = float64(med.Nanoseconds()) / float64(calls) / 1e3
	for _, sys := range systems {
		d := sys.Durables()
		row.Captured += d.Captured
		row.Shipped += d.Shipped
		row.ShippedBytes += d.ShippedBytes
	}
	if sec := elapsed.Seconds(); sec > 0 {
		row.ShipMBPerSec = float64(row.ShippedBytes) / 1e6 / sec
	}
	return row
}

// recRecover warms `actors` durable actors across a 3-node cluster, syncs
// snapshots, hard-kills node 2, and times until every victim-hosted actor
// answers from a survivor with its state intact.
func recRecover(replicas, actors, drivers int) recRecoveryRow {
	systems, flakies, stop := recCluster(3, replicas)
	defer stop()
	victim := 2
	victimID := systems[victim].Node()

	ref := func(k int) actor.Ref {
		return actor.Ref{Type: "rec", Key: fmt.Sprintf("tr-%d", k)}
	}
	hosts := make([]string, actors)
	for k := 0; k < actors; k++ {
		if err := systems[k%2].Call(ref(k), "add", nil, nil); err != nil {
			fatalf("recovery: warm %d: %v", k, err)
		}
		if err := systems[k%2].Call(ref(k), "where", nil, &hosts[k]); err != nil {
			fatalf("recovery: locate %d: %v", k, err)
		}
	}
	var victims []int
	for k, h := range hosts {
		if h == string(victimID) {
			victims = append(victims, k)
		}
	}

	syncStart := time.Now()
	for _, sys := range systems {
		sys.SyncSnapshots()
	}
	syncDur := time.Since(syncStart)

	killAt := time.Now()
	flakies[victim].Kill()
	for systems[0].PeerStateOf(victimID) != actor.PeerDead ||
		systems[1].PeerStateOf(victimID) != actor.PeerDead {
		time.Sleep(5 * time.Millisecond)
	}
	detectDur := time.Since(killAt)

	// Recovery proper: drive every victim-hosted actor from the survivors
	// until it answers, and check the answer carries the pre-crash state.
	var lost atomic.Int64
	recoverStart := time.Now()
	var wg sync.WaitGroup
	var next atomic.Int64
	for d := 0; d < drivers; d++ {
		d := d
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(victims) {
					return
				}
				k := victims[i]
				var got int
				if err := recCall(systems[d%2], ref(k), "get", &got); err != nil {
					fatalf("recovery: recover %d: %v", k, err)
				}
				if got != 1 {
					lost.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	recoverDur := time.Since(recoverStart)

	row := recRecoveryRow{
		Replicas:      replicas,
		Actors:        actors,
		VictimActors:  len(victims),
		SyncMillis:    float64(syncDur.Nanoseconds()) / 1e6,
		DetectMillis:  float64(detectDur.Nanoseconds()) / 1e6,
		RecoverMillis: float64(recoverDur.Nanoseconds()) / 1e6,
		StateLost:     int(lost.Load()),
	}
	if sec := recoverDur.Seconds(); sec > 0 {
		row.ActorsPerSec = float64(len(victims)) / sec
	}
	for _, i := range []int{0, 1} {
		row.RecoveredWithState += systems[i].Durables().RecoveredWithState
	}
	return row
}

func runRecoveryBench(args []string) {
	fs := flag.NewFlagSet("recovery", flag.ExitOnError)
	var (
		actors  = fs.Int("actors", 10_000, "durable actor population for the recovery experiment")
		calls   = fs.Int("calls", 4000, "calls per overhead measurement round")
		rounds  = fs.Int("rounds", 9, "interleaved rounds per overhead level")
		drivers = fs.Int("drivers", 0, "concurrent recovery driver goroutines (0 = 8 per CPU core)")
		smoke   = fs.Bool("smoke", false, "reduced scale for CI (1000 actors, short sweep)")
		out     = fs.String("out", "BENCH_recovery.json", "result file (\"-\" = stdout only)")
	)
	fs.Parse(args)
	if *smoke {
		*actors = 1000
		*calls = 1000
		*rounds = 5
	}
	if *drivers <= 0 {
		*drivers = 8 * runtime.NumCPU()
	}

	report := recReport{
		Generated: time.Now().UTC().Format(time.RFC3339),
		Cores:     runtime.NumCPU(),
		GoVersion: runtime.Version(),
		Note: "Overhead: median per-call latency over interleaved rounds on an identical 3-node " +
			"in-memory topology, durability off vs 1 vs 2 replicas (SnapshotEvery=16 default); " +
			"ship throughput from the runtime's shipped-bytes counters. Recovery: snapshots " +
			"synced, one node hard-killed, then every victim-hosted actor driven from the " +
			"survivors until it answers with restored state; recover_all_ms is that wall time " +
			"(includes the replica pull gated by the recovery semaphore, not failure detection).",
	}

	fmt.Printf("=== snapshot overhead (%d calls x %d rounds per level) ===\n", *calls, *rounds)
	var off recOverheadRow
	for _, k := range []int{0, 1, 2} {
		row := recOverhead(k, 256, *calls, *rounds)
		if k == 0 {
			off = row
			row.RatioVsOff = 1
		} else if off.PerCallUs > 0 {
			row.RatioVsOff = row.PerCallUs / off.PerCallUs
		}
		report.Overhead = append(report.Overhead, row)
		fmt.Printf("K=%d  %7.2f µs/call  ratio %.3f  captured %6d  shipped %6d  %7.3f MB/s\n",
			k, row.PerCallUs, row.RatioVsOff, row.Captured, row.Shipped, row.ShipMBPerSec)
	}

	fmt.Printf("=== time to recover (%d durable actors, kill 1 of 3 nodes) ===\n", *actors)
	for _, k := range []int{1, 2} {
		row := recRecover(k, *actors, *drivers)
		report.Recovery = append(report.Recovery, row)
		fmt.Printf("K=%d  victim hosted %d/%d  sync %.0fms  detect %.0fms  recover %.0fms  (%.0f actors/s, %d lost)\n",
			k, row.VictimActors, row.Actors, row.SyncMillis, row.DetectMillis,
			row.RecoverMillis, row.ActorsPerSec, row.StateLost)
		if row.StateLost > 0 {
			fatalf("recovery: %d actors lost state at K=%d (%+v)", row.StateLost, k, row)
		}
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fatalf("recovery: marshal: %v", err)
	}
	fmt.Printf("%s\n", data)
	if *out != "-" {
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fatalf("recovery: write %s: %v", *out, err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
}
