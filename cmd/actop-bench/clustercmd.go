package main

// The cluster scale benchmark (ISSUE 6): a real multi-process actor cluster
// over loopback TCP, populated to 100K–1M live activations and driven with
// uniformly random cross-node calls. The parent re-execs this binary as
// "cluster-worker" children (one OS process per node, so nodes contend like
// real servers, not like goroutines sharing one scheduler) and speaks a
// JSON-line protocol on their stdin/stdout. It reports sustained calls/sec,
// latency quantiles (per-worker histograms merged via their binary
// encoding), activation memory footprint, and — in the spirit of the COST
// critique (McSherry et al.) — a single-threaded GOMAXPROCS=1 baseline the
// distributed configuration has to beat before claiming scalability.

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"actop/internal/actor"
	"actop/internal/metrics"
	"actop/internal/transport"
)

// --- wire protocol (parent <-> worker, one JSON object per line) ---

type workerCmd struct {
	Cmd string `json:"cmd"`

	// start
	Peers     []string `json:"peers,omitempty"`
	Work      int      `json:"work,omitempty"`
	CacheSize int      `json:"cache_size,omitempty"`
	Workers   int      `json:"workers,omitempty"`
	Seed      int64    `json:"seed,omitempty"`

	// populate
	Start int `json:"start,omitempty"`
	Count int `json:"count,omitempty"`

	// drive
	DurationMS  int `json:"duration_ms,omitempty"`
	Conc        int `json:"conc,omitempty"`
	TotalActors int `json:"total_actors,omitempty"`
}

type workerResp struct {
	OK   bool   `json:"ok"`
	Err  string `json:"err,omitempty"`
	Addr string `json:"addr,omitempty"`

	Activations int    `json:"activations,omitempty"`
	HeapDelta   uint64 `json:"heap_delta,omitempty"`
	HeapInuse   uint64 `json:"heap_inuse,omitempty"`
	Calls       uint64 `json:"calls,omitempty"`
	Errors      uint64 `json:"errors,omitempty"`
	Hist        []byte `json:"hist,omitempty"`
}

// cellActor is the benchmark actor: one counter plus a fixed spin of CPU
// work per call, so calls cost something to execute and the COST comparison
// is not a pure message-passing shootout.
type cellActor struct {
	n    uint64
	work int
}

var spinSink uint64

func spin(n int) uint64 {
	x := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < n; i++ {
		x ^= x >> 12
		x ^= x << 25
		x ^= x >> 27
		x *= 0x2545f4914f6cdd1d
	}
	return x
}

func (c *cellActor) Receive(ctx *actor.Context, method string, args []byte) ([]byte, error) {
	switch method {
	case "Ping":
		atomic.AddUint64(&spinSink, spin(c.work))
		c.n++
		return nil, nil
	}
	return nil, fmt.Errorf("cell: no method %q", method)
}

// --- worker (child process) ---

func runClusterWorker() {
	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	out := json.NewEncoder(os.Stdout)
	fail := func(err error) {
		out.Encode(workerResp{Err: err.Error()})
		os.Exit(1)
	}

	tr, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		fail(err)
	}
	if err := out.Encode(workerResp{OK: true, Addr: string(tr.Node())}); err != nil {
		os.Exit(1)
	}

	var sys *actor.System
	for in.Scan() {
		var cmd workerCmd
		if err := json.Unmarshal(in.Bytes(), &cmd); err != nil {
			fail(err)
		}
		switch cmd.Cmd {
		case "start":
			peers := make([]transport.NodeID, len(cmd.Peers))
			for i, p := range cmd.Peers {
				peers[i] = transport.NodeID(p)
			}
			work := cmd.Work
			sys, err = actor.NewSystem(actor.Config{
				Transport:            tr,
				Peers:                peers,
				Placement:            actor.PlaceLocal,
				Workers:              cmd.Workers,
				QueueCap:             1 << 16,
				CallTimeout:          60 * time.Second,
				LocCacheSize:         cmd.CacheSize,
				DisableThreadControl: true,
				Seed:                 cmd.Seed,
			})
			if err != nil {
				fail(err)
			}
			sys.RegisterType("cell", func() actor.Actor { return &cellActor{work: work} })
			out.Encode(workerResp{OK: true})

		case "populate":
			// PlaceLocal: calling our own share of the keyspace activates
			// it here, so population is embarrassingly parallel across
			// workers with no cross-node chatter.
			before := heapInuse()
			var wg sync.WaitGroup
			var perr atomic.Value
			stride := (cmd.Count + 7) / 8
			for g := 0; g < 8; g++ {
				lo := cmd.Start + g*stride
				hi := lo + stride
				if hi > cmd.Start+cmd.Count {
					hi = cmd.Start + cmd.Count
				}
				if lo >= hi {
					continue
				}
				wg.Add(1)
				go func(lo, hi int) {
					defer wg.Done()
					for i := lo; i < hi; i++ {
						ref := actor.Ref{Type: "cell", Key: "c-" + strconv.Itoa(i)}
						if err := sys.Call(ref, "Ping", nil, nil); err != nil {
							perr.Store(err)
							return
						}
					}
				}(lo, hi)
			}
			wg.Wait()
			if err, _ := perr.Load().(error); err != nil {
				fail(err)
			}
			after := heapInuse()
			var delta uint64
			if after > before {
				delta = after - before
			}
			out.Encode(workerResp{
				OK:          true,
				Activations: sys.Stats().Activations,
				HeapDelta:   delta,
				HeapInuse:   after,
			})

		case "drive":
			var calls, errs atomic.Uint64
			hists := make([]metrics.Histogram, cmd.Conc)
			deadline := time.Now().Add(time.Duration(cmd.DurationMS) * time.Millisecond)
			var wg sync.WaitGroup
			for g := 0; g < cmd.Conc; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(g)*7919 + 1))
					h := &hists[g]
					for time.Now().Before(deadline) {
						k := rng.Intn(cmd.TotalActors)
						ref := actor.Ref{Type: "cell", Key: "c-" + strconv.Itoa(k)}
						start := time.Now()
						if err := sys.Call(ref, "Ping", nil, nil); err != nil {
							errs.Add(1)
							continue
						}
						h.Record(time.Since(start))
						calls.Add(1)
					}
				}(g)
			}
			wg.Wait()
			var merged metrics.Histogram
			for i := range hists {
				merged.Merge(&hists[i])
			}
			out.Encode(workerResp{
				OK:     true,
				Calls:  calls.Load(),
				Errors: errs.Load(),
				Hist:   merged.AppendBinary(nil),
			})

		case "stats":
			out.Encode(workerResp{
				OK:          true,
				Activations: sys.Stats().Activations,
				HeapInuse:   heapInuse(),
			})

		case "quit":
			if sys != nil {
				sys.Stop()
			}
			out.Encode(workerResp{OK: true})
			return
		default:
			fail(fmt.Errorf("cluster-worker: unknown command %q", cmd.Cmd))
		}
	}
}

func heapInuse() uint64 {
	runtime.GC()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return m.HeapInuse
}

// --- parent (orchestrator) ---

type worker struct {
	cmd  *exec.Cmd
	in   *json.Encoder
	out  *bufio.Scanner
	addr string
}

func (w *worker) send(c workerCmd) error { return w.in.Encode(c) }

func (w *worker) recv() (workerResp, error) {
	if !w.out.Scan() {
		if err := w.out.Err(); err != nil {
			return workerResp{}, err
		}
		return workerResp{}, io.ErrUnexpectedEOF
	}
	var r workerResp
	if err := json.Unmarshal(w.out.Bytes(), &r); err != nil {
		return workerResp{}, err
	}
	if r.Err != "" {
		return r, fmt.Errorf("worker: %s", r.Err)
	}
	return r, nil
}

func spawnWorker(gomaxprocs int) (*worker, error) {
	self, err := os.Executable()
	if err != nil {
		return nil, err
	}
	cmd := exec.Command(self, "cluster-worker")
	cmd.Env = os.Environ()
	if gomaxprocs > 0 {
		cmd.Env = append(cmd.Env, fmt.Sprintf("GOMAXPROCS=%d", gomaxprocs))
	}
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	w := &worker{cmd: cmd, in: json.NewEncoder(stdin), out: bufio.NewScanner(stdout)}
	w.out.Buffer(make([]byte, 1<<20), 1<<20)
	hello, err := w.recv()
	if err != nil {
		cmd.Process.Kill()
		return nil, err
	}
	w.addr = hello.Addr
	return w, nil
}

// scaleResult is one row of BENCH_scale.json.
type scaleResult struct {
	Actors        int     `json:"actors"`
	Nodes         int     `json:"nodes"`
	PopulateSecs  float64 `json:"populate_secs"`
	ActivateRate  float64 `json:"activations_per_sec"`
	HeapBytes     uint64  `json:"heap_bytes_total"`
	ActorsPerGB   float64 `json:"actors_per_gb"`
	DriveSecs     float64 `json:"drive_secs"`
	Calls         uint64  `json:"calls"`
	Errors        uint64  `json:"errors"`
	CallsPerSec   float64 `json:"calls_per_sec"`
	P50Micros     float64 `json:"p50_us"`
	P99Micros     float64 `json:"p99_us"`
	MaxMicros     float64 `json:"max_us"`
	CostCallsSec  float64 `json:"cost_calls_per_sec,omitempty"`
	CostP99Micros float64 `json:"cost_p99_us,omitempty"`
	SpeedupVsCost float64 `json:"speedup_vs_cost,omitempty"`
}

type scaleReport struct {
	Generated   string        `json:"generated"`
	Cores       int           `json:"cores"`
	GoVersion   string        `json:"go_version"`
	WorkPerCall int           `json:"work_per_call"`
	Note        string        `json:"note"`
	Scales      []scaleResult `json:"scales"`
}

// envRequireSpeedup supplies -require-speedup's default from the
// ACTOP_REQUIRE_SPEEDUP environment variable: unset = 0 (report only),
// "1" = 1.0, any other value = the required factor. The shard-plane
// speedup test in internal/actor honors the same gate.
func envRequireSpeedup() float64 {
	v := os.Getenv("ACTOP_REQUIRE_SPEEDUP")
	if v == "" {
		return 0
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil || f <= 0 {
		return 1.0
	}
	return f
}

func runClusterBench(args []string) {
	fs := flag.NewFlagSet("cluster", flag.ExitOnError)
	var (
		nodes   = fs.Int("nodes", 4, "worker processes (cluster nodes)")
		actors  = fs.String("actors", "100000,1000000", "comma-separated activation counts to sweep")
		conc    = fs.Int("conc", 32, "concurrent drivers per node")
		drive   = fs.Duration("drive", 10*time.Second, "measurement duration per scale")
		work    = fs.Int("work", 2000, "spin iterations of CPU work per call")
		cache   = fs.Int("cache", 0, "per-node location cache bound (0 = runtime default)")
		out     = fs.String("out", "BENCH_scale.json", "result file")
		cost    = fs.Bool("cost", true, "also run the single-threaded COST baseline")
		require = fs.Float64("require-speedup", envRequireSpeedup(),
			"fail unless cluster beats COST by this factor (0 = report only; default from ACTOP_REQUIRE_SPEEDUP)")
	)
	fs.Parse(args)

	var counts []int
	for _, f := range splitComma(*actors) {
		n, err := strconv.Atoi(f)
		if err != nil || n <= 0 {
			fatalf("bad -actors entry %q", f)
		}
		counts = append(counts, n)
	}

	report := scaleReport{
		Generated:   time.Now().UTC().Format(time.RFC3339),
		Cores:       runtime.NumCPU(),
		GoVersion:   runtime.Version(),
		WorkPerCall: *work,
		Note: "COST baseline = same workload, one process, GOMAXPROCS=1, single driver; " +
			"speedup_vs_cost below 1.0 on few-core hosts is expected (coordination " +
			"costs more than it buys until real cores are added).",
	}

	for _, n := range counts {
		fmt.Printf("=== cluster scale: %d actors on %d nodes ===\n", n, *nodes)
		res, err := runOneScale(n, *nodes, *conc, *drive, *work, *cache)
		if err != nil {
			fatalf("scale %d: %v", n, err)
		}
		if *cost {
			fmt.Printf("--- COST baseline: %d actors, 1 process, GOMAXPROCS=1 ---\n", n)
			costRes, err := runOneScaleCost(n, *drive, *work, *cache)
			if err != nil {
				fatalf("COST baseline %d: %v", n, err)
			}
			res.CostCallsSec = costRes.CallsPerSec
			res.CostP99Micros = costRes.P99Micros
			if costRes.CallsPerSec > 0 {
				res.SpeedupVsCost = res.CallsPerSec / costRes.CallsPerSec
			}
		}
		report.Scales = append(report.Scales, res)
		printScale(res)
	}

	data, _ := json.MarshalIndent(report, "", "  ")
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatalf("write %s: %v", *out, err)
	}
	fmt.Printf("wrote %s\n", *out)

	if *require > 0 {
		for _, s := range report.Scales {
			if s.SpeedupVsCost < *require {
				fatalf("scale %d: speedup vs COST %.2f below required %.2f",
					s.Actors, s.SpeedupVsCost, *require)
			}
		}
	}
}

func runOneScale(total, nodes, conc int, drive time.Duration, work, cache int) (scaleResult, error) {
	workers := make([]*worker, 0, nodes)
	defer func() {
		for _, w := range workers {
			w.send(workerCmd{Cmd: "quit"})
			w.cmd.Wait()
		}
	}()
	peers := make([]string, 0, nodes)
	for i := 0; i < nodes; i++ {
		w, err := spawnWorker(0)
		if err != nil {
			return scaleResult{}, err
		}
		workers = append(workers, w)
		peers = append(peers, w.addr)
	}
	for i, w := range workers {
		if err := w.send(workerCmd{
			Cmd: "start", Peers: peers, Work: work, CacheSize: cache,
			Workers: 8, Seed: int64(i + 1),
		}); err != nil {
			return scaleResult{}, err
		}
	}
	for _, w := range workers {
		if _, err := w.recv(); err != nil {
			return scaleResult{}, err
		}
	}
	return driveWorkers(workers, total, conc, drive)
}

// runOneScaleCost runs the same population and workload in one process
// pinned to one OS thread — the COST baseline.
func runOneScaleCost(total int, drive time.Duration, work, cache int) (scaleResult, error) {
	w, err := spawnWorker(1)
	if err != nil {
		return scaleResult{}, err
	}
	defer func() {
		w.send(workerCmd{Cmd: "quit"})
		w.cmd.Wait()
	}()
	if err := w.send(workerCmd{
		Cmd: "start", Peers: []string{w.addr}, Work: work, CacheSize: cache,
		Workers: 1, Seed: 1,
	}); err != nil {
		return scaleResult{}, err
	}
	if _, err := w.recv(); err != nil {
		return scaleResult{}, err
	}
	return driveWorkers([]*worker{w}, total, 1, drive)
}

func driveWorkers(workers []*worker, total, conc int, drive time.Duration) (scaleResult, error) {
	nodes := len(workers)
	res := scaleResult{Actors: total, Nodes: nodes}

	// Populate: each worker activates an equal contiguous slice locally.
	popStart := time.Now()
	per := (total + nodes - 1) / nodes
	start := 0
	for _, w := range workers {
		count := per
		if start+count > total {
			count = total - start
		}
		if err := w.send(workerCmd{Cmd: "populate", Start: start, Count: count}); err != nil {
			return res, err
		}
		start += count
	}
	activations := 0
	for _, w := range workers {
		r, err := w.recv()
		if err != nil {
			return res, err
		}
		activations += r.Activations
		res.HeapBytes += r.HeapDelta
	}
	res.PopulateSecs = time.Since(popStart).Seconds()
	if res.PopulateSecs > 0 {
		res.ActivateRate = float64(total) / res.PopulateSecs
	}
	if activations < total {
		return res, fmt.Errorf("populated %d of %d activations", activations, total)
	}
	if res.HeapBytes > 0 {
		res.ActorsPerGB = float64(total) / (float64(res.HeapBytes) / (1 << 30))
	}
	fmt.Printf("populated %d activations in %.1fs (%.0f/s, %.0f actors/GB)\n",
		activations, res.PopulateSecs, res.ActivateRate, res.ActorsPerGB)

	// Drive: every worker fires uniformly random calls across the whole
	// keyspace, so ~(nodes-1)/nodes of traffic crosses a socket.
	for _, w := range workers {
		if err := w.send(workerCmd{
			Cmd: "drive", DurationMS: int(drive.Milliseconds()),
			Conc: conc, TotalActors: total,
		}); err != nil {
			return res, err
		}
	}
	var merged metrics.Histogram
	for _, w := range workers {
		r, err := w.recv()
		if err != nil {
			return res, err
		}
		res.Calls += r.Calls
		res.Errors += r.Errors
		if len(r.Hist) > 0 {
			var h metrics.Histogram
			if err := h.UnmarshalBinary(r.Hist); err != nil {
				return res, err
			}
			merged.Merge(&h)
		}
	}
	res.DriveSecs = drive.Seconds()
	if res.DriveSecs > 0 {
		res.CallsPerSec = float64(res.Calls) / res.DriveSecs
	}
	res.P50Micros = float64(merged.Quantile(0.50)) / 1e3
	res.P99Micros = float64(merged.Quantile(0.99)) / 1e3
	res.MaxMicros = float64(merged.Max()) / 1e3
	return res, nil
}

func printScale(r scaleResult) {
	fmt.Printf("%d actors / %d nodes: %.0f calls/s (%d errors), p50 %.0fµs p99 %.0fµs\n",
		r.Actors, r.Nodes, r.CallsPerSec, r.Errors, r.P50Micros, r.P99Micros)
	if r.CostCallsSec > 0 {
		fmt.Printf("COST baseline: %.0f calls/s, p99 %.0fµs → cluster speedup %.2f×\n",
			r.CostCallsSec, r.CostP99Micros, r.SpeedupVsCost)
	}
}

func splitComma(s string) []string {
	var out []string
	cur := ""
	for _, c := range s {
		if c == ',' {
			if cur != "" {
				out = append(out, cur)
			}
			cur = ""
			continue
		}
		cur += string(c)
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}
