package main

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"actop/internal/actor"
	"actop/internal/codec"
	"actop/internal/transport"
	"actop/internal/workload"
)

// msgplane measures the real (non-simulated) message plane: raw transport
// throughput over loopback TCP, and full System.Call round trips through
// the zero-copy local path, the serializing local path, and remote TCP.
// Unlike the figure experiments this is a runtime micro-benchmark; it
// ignores the simulation scale flags except -measure (per-case duration).

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}

// mpCounter is the benchmark actor: counter adds through both paths.
type mpCounter struct{ n int64 }

func (c *mpCounter) Receive(ctx *actor.Context, method string, args []byte) ([]byte, error) {
	switch method {
	case "Add": // fast-path message (remote calls land here)
		var add workload.CounterAdd
		if err := codec.Unmarshal(args, &add); err != nil {
			return nil, err
		}
		c.n += add.Delta
	case "AddEnc": // gob-fallback message
		var add mpEncodedAdd
		if err := codec.Unmarshal(args, &add); err != nil {
			return nil, err
		}
		c.n += add.Delta
	default:
		return nil, fmt.Errorf("no method %q", method)
	}
	return codec.Marshal(workload.CounterValue{N: c.n})
}

func (c *mpCounter) ReceiveValue(ctx *actor.Context, method string, args interface{}) (interface{}, error) {
	c.n += args.(workload.CounterAdd).Delta
	return workload.CounterValue{N: c.n}, nil
}

// mpEncodedAdd is the no-methods variant that forces the gob fallback.
type mpEncodedAdd struct{ Delta int64 }

func runMsgPlane(measure time.Duration) {
	if measure <= 0 {
		measure = 2 * time.Second
	}
	fmt.Printf("message plane micro-benchmarks (%v per case, %d workers)\n\n",
		measure, runtime.GOMAXPROCS(0))

	fmt.Printf("%-28s %14s %10s\n", "case", "ops/sec", "note")
	row := func(name string, ops uint64, note string) {
		fmt.Printf("%-28s %14.0f %10s\n", name, float64(ops)/measure.Seconds(), note)
	}

	row("tcp send (256B, loopback)", runTCPBlast(measure), "1-way")
	local, encoded := runLocalCalls(measure)
	row("local call, value path", local, "RPC")
	row("local call, encoded path", encoded, "RPC")
	row("remote call (loopback tcp)", runRemoteCalls(measure), "RPC")
}

// runTCPBlast counts one-way envelope deliveries between two TCP nodes.
func runTCPBlast(measure time.Duration) uint64 {
	a, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		fatalf("msgplane: %v", err)
	}
	defer a.Close()
	b, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		fatalf("msgplane: %v", err)
	}
	defer b.Close()
	var delivered atomic.Uint64
	b.SetHandler(func(env *transport.Envelope) { delivered.Add(1) })

	stop := make(chan struct{})
	time.AfterFunc(measure, func() { close(stop) })
	payload := make([]byte, 256)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := uint64(0); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if err := a.Send(b.Node(), &transport.Envelope{ID: i, Payload: payload}); err != nil {
					return
				}
			}
		}()
	}
	wg.Wait()
	// Let queued envelopes drain before sampling the counter.
	time.Sleep(100 * time.Millisecond)
	return delivered.Load()
}

func newMsgPlaneSystem(tr transport.Transport, peers []transport.NodeID) *actor.System {
	sys, err := actor.NewSystem(actor.Config{
		Transport: tr, Peers: peers,
		Placement: actor.PlaceLocal, Seed: 1,
		CallTimeout: 10 * time.Second,
	})
	if err != nil {
		fatalf("msgplane: %v", err)
	}
	sys.RegisterType("counter", func() actor.Actor { return &mpCounter{} })
	return sys
}

// runLocalCalls counts co-located System.Call round trips through the
// value path and the serializing path.
func runLocalCalls(measure time.Duration) (value, encoded uint64) {
	net := transport.NewNetwork(0)
	sys := newMsgPlaneSystem(net.Join("solo"), []transport.NodeID{"solo"})
	defer sys.Stop()
	ref := actor.Ref{Type: "counter", Key: "local"}

	deadline := time.Now().Add(measure)
	for time.Now().Before(deadline) {
		var out workload.CounterValue
		if err := sys.Call(ref, "Add", workload.CounterAdd{Delta: 1}, &out); err != nil {
			fatalf("msgplane: local value call: %v", err)
		}
		value++
	}
	deadline = time.Now().Add(measure)
	for time.Now().Before(deadline) {
		var out workload.CounterValue
		if err := sys.Call(ref, "AddEnc", mpEncodedAdd{Delta: 1}, &out); err != nil {
			fatalf("msgplane: local encoded call: %v", err)
		}
		encoded++
	}
	return value, encoded
}

// runRemoteCalls counts cross-node System.Call round trips over loopback
// TCP (4 concurrent callers, mirroring a small frontend fan-in).
func runRemoteCalls(measure time.Duration) uint64 {
	trA, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		fatalf("msgplane: %v", err)
	}
	trB, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		fatalf("msgplane: %v", err)
	}
	peers := []transport.NodeID{trA.Node(), trB.Node()}
	sysA := newMsgPlaneSystem(trA, peers)
	defer sysA.Stop()
	sysB := newMsgPlaneSystem(trB, peers)
	defer sysB.Stop()

	// PlaceLocal pins the actor to its first caller: activate from B so
	// A's calls go over the wire.
	ref := actor.Ref{Type: "counter", Key: "remote"}
	var out workload.CounterValue
	if err := sysB.Call(ref, "Add", workload.CounterAdd{Delta: 0}, &out); err != nil {
		fatalf("msgplane: activate: %v", err)
	}

	var calls atomic.Uint64
	deadline := time.Now().Add(measure)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				var out workload.CounterValue
				if err := sysA.Call(ref, "Add", workload.CounterAdd{Delta: 1}, &out); err != nil {
					fatalf("msgplane: remote call: %v", err)
				}
				calls.Add(1)
			}
		}()
	}
	wg.Wait()
	return calls.Load()
}
