package main

import (
	"fmt"
	"strings"
	"time"

	"actop/internal/actor"
	"actop/internal/codec"
	"actop/internal/metrics"
	"actop/internal/trace"
	"actop/internal/transport"
	"actop/internal/workload"
)

// The trace subcommand stands up a real three-node loopback-TCP cluster with
// sampling at 1.0, drives a two-hop workload (frontend → relay → counter),
// and prints the aggregate end-to-end latency decomposition assembled from
// the hop-carried timing records — the paper's Fig. 4 breakdown measured on
// the live runtime instead of the simulator. As a self-check it compares the
// traced per-call component sum against latency measured independently by
// the driver around each Call; the two must agree within 10%.

// mpRelay forwards each call to the counter actor — the extra hop that makes
// the trace a tree rather than a single edge.
type mpRelay struct{}

func (mpRelay) Receive(ctx *actor.Context, method string, args []byte) ([]byte, error) {
	var key string
	if err := codec.Unmarshal(args, &key); err != nil {
		return nil, err
	}
	var out workload.CounterValue
	if err := ctx.Call(actor.Ref{Type: "counter", Key: key}, "Add", workload.CounterAdd{Delta: 1}, &out); err != nil {
		return nil, err
	}
	return codec.Marshal(out)
}

func newTraceBenchSystem(tr transport.Transport, peers []transport.NodeID) *actor.System {
	sys, err := actor.NewSystem(actor.Config{
		Transport: tr, Peers: peers,
		Placement: actor.PlaceLocal, Seed: 1,
		CallTimeout:     10 * time.Second,
		TraceSampleRate: 1.0,
		TraceRingSize:   1 << 16,
	})
	if err != nil {
		fatalf("trace: %v", err)
	}
	sys.RegisterType("counter", func() actor.Actor { return &mpCounter{} })
	sys.RegisterType("relay", func() actor.Actor { return mpRelay{} })
	return sys
}

func runTraceBench(measure time.Duration) {
	if measure <= 0 {
		measure = 2 * time.Second
	}
	trs := make([]transport.Transport, 3)
	peers := make([]transport.NodeID, 3)
	for i := range trs {
		tr, err := transport.ListenTCP("127.0.0.1:0")
		if err != nil {
			fatalf("trace: %v", err)
		}
		trs[i] = tr
		peers[i] = tr.Node()
	}
	systems := make([]*actor.System, 3)
	for i := range trs {
		systems[i] = newTraceBenchSystem(trs[i], peers)
		defer systems[i].Stop()
	}
	frontend, relayNode, counterNode := systems[0], systems[1], systems[2]

	// PlaceLocal priming pins the topology: relay on node 1, counter on
	// node 2, so every driven call crosses two wires.
	relayRef := actor.Ref{Type: "relay", Key: "r"}
	var out workload.CounterValue
	if err := counterNode.Call(actor.Ref{Type: "counter", Key: "c"}, "Add",
		workload.CounterAdd{Delta: 0}, &out); err != nil {
		fatalf("trace: prime counter: %v", err)
	}
	if err := relayNode.Call(relayRef, "Relay", "c", &out); err != nil {
		fatalf("trace: prime relay: %v", err)
	}

	fmt.Printf("three-node loopback-TCP cluster, two-hop calls (%s → %s → %s), sampling 1.0\n",
		frontend.Node(), relayNode.Node(), counterNode.Node())

	// Drive the workload, independently timing each call at the driver.
	var wall metrics.Histogram
	calls := 0
	deadline := time.Now().Add(measure)
	for time.Now().Before(deadline) {
		start := time.Now()
		if err := frontend.Call(relayRef, "Relay", "c", &out); err != nil {
			fatalf("trace: call: %v", err)
		}
		wall.Record(time.Since(start))
		calls++
	}

	// The decomposition view: every root client span on the frontend.
	var roots []trace.Span
	for _, sp := range frontend.TraceRing().Snapshot(0) {
		if sp.Kind == "client" && sp.Method == "Relay" && sp.ParentID == 0 {
			roots = append(roots, sp)
		}
	}
	if len(roots) == 0 {
		fatalf("trace: no client spans captured")
	}
	d := trace.Decompose(roots)
	fmt.Printf("\nend-to-end decomposition over %d traced calls (of %d driven):\n\n%s\n",
		d.Count(), calls, d.Table())

	// One assembled call tree, as collected across the cluster.
	last := roots[len(roots)-1]
	fmt.Printf("sample call tree (trace %x):\n", last.TraceID)
	printTree(frontend.ClusterTrace(last.TraceID), 0)

	// Self-check: the traced component sum must track latency measured
	// outside the runtime. (The driver's clock wraps slightly more code
	// than the span's, so exact equality is not expected.)
	sum := d.SumMean()
	indep := wall.Mean()
	dev := 100 * (float64(indep) - float64(sum)) / float64(indep)
	fmt.Printf("\ncomponent sum (mean) %v vs driver-measured end-to-end (mean) %v: %.1f%% apart\n",
		sum.Round(time.Microsecond), indep.Round(time.Microsecond), dev)
	if dev < -10 || dev > 10 {
		fatalf("trace: decomposition does not close: %.1f%% off the independent measurement", dev)
	}
	fmt.Println("decomposition closes within 10% ✓")
}

// printTree renders assembled trace trees with per-hop totals.
func printTree(nodes []*trace.TreeNode, depth int) {
	indent := strings.Repeat("  ", depth)
	for _, n := range nodes {
		if n.Client != nil {
			sp := n.Client
			fmt.Printf("%s%s %s.%s on %s: total %v (network %v, exec %v)\n",
				indent, sp.Kind, sp.Actor, sp.Method, sp.Node,
				sp.Total.Round(time.Microsecond), sp.Network.Round(time.Microsecond),
				sp.Exec.Round(time.Microsecond))
		}
		if n.Server != nil {
			sp := n.Server
			fmt.Printf("%s server view on %s: recv_queue %v, work_queue %v, exec %v\n",
				indent, sp.Node, sp.RecvQueue.Round(time.Microsecond),
				sp.WorkQueue.Round(time.Microsecond), sp.Exec.Round(time.Microsecond))
		}
		printTree(n.Children, depth+1)
	}
}
