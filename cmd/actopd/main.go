// Command actopd runs one node of the ActOp actor runtime over TCP, with a
// built-in demo actor type ("kv": Get/Put/Del) so a multi-machine cluster
// can be driven by hand.
//
// Start a three-node cluster (any hosts; here one machine):
//
//	actopd -listen 127.0.0.1:7001 -peers 127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003
//	actopd -listen 127.0.0.1:7002 -peers 127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003
//	actopd -listen 127.0.0.1:7003 -peers 127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003
//
// Exercise it from any node with -call:
//
//	actopd -listen 127.0.0.1:7004 -peers 127.0.0.1:7001,... -call kv/user42 -method Put -value hello
//
// ActOp (partitioning + thread tuning) runs on every long-lived node;
// counters are logged once per -stats interval.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"actop/internal/actor"
	"actop/internal/codec"
	"actop/internal/core"
	"actop/internal/metrics"
	"actop/internal/transport"
)

// kvActor is the built-in demo type: a tiny per-key store.
type kvActor struct{ Value string }

func (k *kvActor) Receive(ctx *actor.Context, method string, args []byte) ([]byte, error) {
	switch method {
	case "Put":
		var v string
		if err := codec.Unmarshal(args, &v); err != nil {
			return nil, err
		}
		k.Value = v
		return nil, nil
	case "Get":
		return codec.Marshal(k.Value)
	case "Del":
		k.Value = ""
		return nil, nil
	}
	return nil, fmt.Errorf("kv: unknown method %q", method)
}

func (k *kvActor) Snapshot() ([]byte, error) { return codec.Marshal(k.Value) }
func (k *kvActor) Restore(b []byte) error    { return codec.Unmarshal(b, &k.Value) }

// DurableActor opts kv into snapshot replication when the node runs with
// -durable-replicas > 0 (with 0 replicas the marker is inert).
func (k *kvActor) DurableActor() {}

func main() {
	var (
		listen   = flag.String("listen", "127.0.0.1:7001", "listen address (also the node id)")
		peersStr = flag.String("peers", "", "comma-separated peer addresses (must include this node)")
		noActOp  = flag.Bool("no-actop", false, "disable the ActOp optimizer")
		noTune   = flag.Bool("no-thread-control", false, "keep partitioning but disable the live thread controller")
		tuneIvl  = flag.Duration("thread-interval", 0, "thread controller period (0 = optimizer default)")
		hbIvl    = flag.Duration("heartbeat-interval", time.Second, "failure detector ping period (and per-ping timeout)")
		suspect  = flag.Int("suspect-after", 2, "consecutive missed heartbeats before a peer is suspect")
		deadAft  = flag.Int("dead-after", 5, "consecutive missed heartbeats before a peer is declared dead")
		noFail   = flag.Bool("no-failover", false, "disable the failure detector, call retries, and actor failover")
		durRepl  = flag.Int("durable-replicas", 0, "peer replicas per durable actor snapshot (0 disables durability)")
		snapIvl  = flag.Duration("snapshot-interval", 0, "wall-clock bound on durable snapshot staleness (0 = runtime default)")
		debug    = flag.String("debug", "", "serve /debug/actop, /metrics + pprof on this address (e.g. 127.0.0.1:6060); empty disables")
		sample   = flag.Float64("trace-sample", 0.01, "fraction of root calls traced for /debug/actop/traces (0 disables)")
		noHot    = flag.Bool("no-hotspots", false, "disable the per-actor hot-spot profiler")
		hotK     = flag.Int("hotspot-k", 0, "hot-spot sketch capacity per node (0 = runtime default)")
		fltRing  = flag.Int("flight-ring", 0, "flight recorder ring size in events (0 = runtime default)")
		sloTgt   = flag.Duration("slo", 0, "p99 call-latency SLO; breaches trigger a flight dump (0 disables)")
		stats    = flag.Duration("stats", 10*time.Second, "stats logging period")
		call     = flag.String("call", "", "one-shot: call type/key instead of serving")
		method   = flag.String("method", "Get", "one-shot method")
		value    = flag.String("value", "", "one-shot Put value")
	)
	flag.Parse()

	tr, err := transport.ListenTCP(*listen)
	if err != nil {
		log.Fatal(err)
	}
	var peers []transport.NodeID
	for _, p := range strings.Split(*peersStr, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peers = append(peers, transport.NodeID(p))
		}
	}
	peers = append(peers, tr.Node())
	seen := map[transport.NodeID]bool{}
	uniq := peers[:0]
	for _, p := range peers {
		if !seen[p] {
			seen[p] = true
			uniq = append(uniq, p)
		}
	}
	reg := metrics.NewRegistry()
	started := time.Now()
	uptime := reg.Gauge("actop_uptime_seconds", "Seconds since this node started.")
	reg.OnCollect(func(*metrics.Registry) { uptime.Set(time.Since(started).Seconds()) })
	metrics.RegisterRuntimeGauges(reg)
	sys, err := actor.NewSystem(actor.Config{
		Transport: tr, Peers: uniq, Seed: time.Now().UnixNano(),
		DisableThreadControl:  *noTune,
		ThreadControlInterval: *tuneIvl,
		HeartbeatInterval:     *hbIvl,
		SuspectAfter:          *suspect,
		DeadAfter:             *deadAft,
		DisableFailover:       *noFail,
		DurableReplicas:       *durRepl,
		SnapshotInterval:      *snapIvl,
		TraceSampleRate:       *sample,
		DisableHotspots:       *noHot,
		HotspotK:              *hotK,
		FlightRingSize:        *fltRing,
		SLOTarget:             *sloTgt,
		Metrics:               reg,
	})
	if err != nil {
		log.Fatal(err)
	}
	sys.RegisterType("kv", func() actor.Actor { return &kvActor{} })
	defer sys.Stop()

	if *call != "" {
		parts := strings.SplitN(*call, "/", 2)
		if len(parts) != 2 {
			log.Fatalf("-call wants type/key, got %q", *call)
		}
		ref := actor.Ref{Type: parts[0], Key: parts[1]}
		switch *method {
		case "Put":
			if err := sys.Call(ref, "Put", *value, nil); err != nil {
				log.Fatal(err)
			}
			fmt.Println("ok")
		default:
			var out string
			if err := sys.Call(ref, *method, nil, &out); err != nil {
				log.Fatal(err)
			}
			fmt.Println(out)
		}
		return
	}

	var opt *core.Optimizer
	if !*noActOp {
		opts := core.DefaultOptions()
		opts.Metrics = reg
		opts.Flight = sys.FlightRecorder()
		opt = core.NewOptimizer(sys, opts)
		opt.Start()
		defer opt.Stop()
	}
	if *debug != "" {
		serveDebug(*debug, sys, opt, reg)
	}
	log.Printf("actopd serving on %s with %d peers (actop=%v)", tr.Node(), len(uniq), !*noActOp)

	tick := time.NewTicker(*stats)
	defer tick.Stop()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	for {
		select {
		case <-tick.C:
			st := sys.Stats()
			recv, work, send := sys.Stages()
			log.Printf("activations=%d calls(l/r)=%d/%d migrations(in/out)=%d/%d threads=%d/%d/%d edges=%d",
				st.Activations, st.CallsLocal, st.CallsRemote,
				st.MigrationsIn, st.MigrationsOut,
				recv.Workers(), work.Workers(), send.Workers(), st.MonitoredEdges)
		case <-sig:
			log.Print("shutting down")
			return
		}
	}
}
