package main

import (
	"encoding/json"
	"log"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"actop/internal/actor"
	"actop/internal/core"
	"actop/internal/flight"
	"actop/internal/hotspot"
	"actop/internal/metrics"
	"actop/internal/trace"
)

// debugPayload is the /debug/actop JSON document: node identity and
// counters, the partitioner's progress, and the thread controller's full
// state (live stage measurements, solver inputs/outputs, the installed
// allocation).
type debugPayload struct {
	Node  string   `json:"node"`
	Peers []string `json:"peers"`

	// Server identity in time: when this snapshot was taken and how long
	// the process has been up (lets dashboards detect restarts and skew).
	Now           time.Time `json:"now"`
	UptimeSeconds float64   `json:"uptime_seconds"`

	Activations   int    `json:"activations"`
	CallsLocal    uint64 `json:"calls_local"`
	CallsRemote   uint64 `json:"calls_remote"`
	MigrationsIn  uint64 `json:"migrations_in"`
	MigrationsOut uint64 `json:"migrations_out"`
	Redirects     uint64 `json:"redirects"`
	Edges         int    `json:"monitored_edges"`

	// Failure tolerance: the detector's per-peer states and counters.
	Membership map[string]string       `json:"membership"`
	Failures   metrics.FailureSnapshot `json:"failures"`

	// Durability plane: capture/ship/recovery counters, including the
	// recovery-stampede throttle (recovery_throttled).
	Durable metrics.DurableSnapshot `json:"durable"`

	ActOpEnabled   bool  `json:"actop_enabled"`
	ExchangeRounds int   `json:"exchange_rounds"`
	ActorsMoved    int   `json:"actors_moved"`
	Retunes        int   `json:"retunes"`
	StageWorkers   []int `json:"stage_workers"` // live recv/work/send pools
	StageQueueLens []int `json:"stage_queue_lens"`

	Threads *core.Status `json:"thread_controller,omitempty"`
}

// tracesPayload is the /debug/actop/traces JSON document. Without a ?trace=
// selector it lists this node's most recent completed spans; with one it
// carries the cluster-assembled call tree for that trace id.
type tracesPayload struct {
	Node     string            `json:"node"`
	Recorded uint64            `json:"spans_recorded"`
	Spans    []trace.Span      `json:"spans,omitempty"`
	TraceID  uint64            `json:"trace_id,omitempty"`
	Trees    []*trace.TreeNode `json:"trees,omitempty"`
}

// hotspotsPayload is the /debug/actop/hotspots JSON document: the node's
// (or, with ?cluster=1, the cluster's) hottest actors by decayed cost.
type hotspotsPayload struct {
	Node    string          `json:"node"`
	Cluster bool            `json:"cluster"`
	Tracked int             `json:"tracked"`
	Top     []hotspot.Entry `json:"top"`
}

// flightPayload is the /debug/actop/flight JSON document: ring counters,
// the newest events, and the retained anomaly dumps.
type flightPayload struct {
	Node        string         `json:"node"`
	Recorded    uint64         `json:"events_recorded"`
	Overwritten uint64         `json:"events_overwritten"`
	Dumps       uint64         `json:"dumps_taken"`
	Suppressed  uint64         `json:"triggers_suppressed"`
	Events      []flight.Event `json:"events"`
	DumpList    []flight.Dump  `json:"dump_list,omitempty"`
}

// newDebugMux serves /debug/actop (controller + node introspection),
// /debug/actop/traces (completed spans and cluster trace assembly),
// /metrics (Prometheus text exposition), and the standard pprof endpoints
// under /debug/pprof/.
func newDebugMux(sys *actor.System, opt *core.Optimizer, reg *metrics.Registry, started time.Time) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/actop", func(w http.ResponseWriter, r *http.Request) {
		st := sys.Stats()
		now := time.Now()
		p := debugPayload{
			Node:          string(sys.Node()),
			Now:           now,
			UptimeSeconds: now.Sub(started).Seconds(),
			Activations:   st.Activations,
			CallsLocal:    st.CallsLocal,
			CallsRemote:   st.CallsRemote,
			MigrationsIn:  st.MigrationsIn,
			MigrationsOut: st.MigrationsOut,
			Redirects:     st.Redirects,
			Edges:         st.MonitoredEdges,
		}
		for _, peer := range sys.Peers() {
			p.Peers = append(p.Peers, string(peer))
		}
		p.Membership = make(map[string]string)
		for peer, st := range sys.Membership() {
			p.Membership[string(peer)] = st.String()
		}
		p.Failures = sys.Failures()
		p.Durable = sys.Durables()
		recv, work, send := sys.Stages()
		p.StageWorkers = []int{recv.Workers(), work.Workers(), send.Workers()}
		p.StageQueueLens = []int{recv.QueueLen(), work.QueueLen(), send.QueueLen()}
		if opt != nil {
			p.ActOpEnabled = true
			p.ExchangeRounds, p.ActorsMoved, p.Retunes = opt.Counters()
			ts := opt.ThreadStatus()
			p.Threads = &ts
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(p)
	})
	mux.HandleFunc("/debug/actop/traces", func(w http.ResponseWriter, r *http.Request) {
		ring := sys.TraceRing()
		p := tracesPayload{Node: string(sys.Node()), Recorded: ring.Recorded()}
		if sel := r.URL.Query().Get("trace"); sel != "" {
			id, err := strconv.ParseUint(sel, 0, 64)
			if err != nil {
				// Bare hex (the form trace ids are logged in) as a fallback.
				if id, err = strconv.ParseUint(sel, 16, 64); err != nil {
					http.Error(w, "bad trace id: "+sel, http.StatusBadRequest)
					return
				}
			}
			p.TraceID = id
			p.Trees = sys.ClusterTrace(id)
		} else {
			limit := 100
			if ls := r.URL.Query().Get("limit"); ls != "" {
				if n, err := strconv.Atoi(ls); err == nil && n > 0 {
					limit = n
				}
			}
			p.Spans = ring.Snapshot(limit)
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(p)
	})
	mux.HandleFunc("/debug/actop/hotspots", func(w http.ResponseWriter, r *http.Request) {
		n := 20
		if ns := r.URL.Query().Get("n"); ns != "" {
			if v, err := strconv.Atoi(ns); err == nil && v > 0 {
				n = v
			}
		}
		p := hotspotsPayload{Node: string(sys.Node())}
		if pf := sys.HotspotProfiler(); pf != nil {
			p.Tracked = pf.Tracked()
		}
		if r.URL.Query().Get("cluster") == "1" {
			p.Cluster = true
			p.Top = sys.ClusterHotspots(n)
		} else {
			p.Top = sys.LocalHotspots(n)
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(p)
	})
	mux.HandleFunc("/debug/actop/flight", func(w http.ResponseWriter, r *http.Request) {
		limit := 200
		if ls := r.URL.Query().Get("limit"); ls != "" {
			if v, err := strconv.Atoi(ls); err == nil && v > 0 {
				limit = v
			}
		}
		fr := sys.FlightRecorder()
		p := flightPayload{
			Node:        string(sys.Node()),
			Recorded:    fr.Recorded(),
			Overwritten: fr.Overwritten(),
			Dumps:       fr.DumpsTaken(),
			Suppressed:  fr.Suppressed(),
			Events:      fr.Snapshot(limit),
			DumpList:    fr.Dumps(),
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(p)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.Write(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// serveDebug starts the debug server on addr (non-blocking); failures are
// logged, not fatal — the node serves traffic regardless.
func serveDebug(addr string, sys *actor.System, opt *core.Optimizer, reg *metrics.Registry) {
	mux := newDebugMux(sys, opt, reg, time.Now())
	go func() {
		if err := http.ListenAndServe(addr, mux); err != nil {
			log.Printf("debug server on %s: %v", addr, err)
		}
	}()
	log.Printf("debug endpoints on http://%s/debug/actop (traces, hotspots, flight under /debug/actop/*, metrics on /metrics, pprof under /debug/pprof/)", addr)
}
