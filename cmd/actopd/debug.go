package main

import (
	"encoding/json"
	"log"
	"net/http"
	"net/http/pprof"

	"actop/internal/actor"
	"actop/internal/core"
	"actop/internal/metrics"
)

// debugPayload is the /debug/actop JSON document: node identity and
// counters, the partitioner's progress, and the thread controller's full
// state (live stage measurements, solver inputs/outputs, the installed
// allocation).
type debugPayload struct {
	Node  string   `json:"node"`
	Peers []string `json:"peers"`

	Activations   int    `json:"activations"`
	CallsLocal    uint64 `json:"calls_local"`
	CallsRemote   uint64 `json:"calls_remote"`
	MigrationsIn  uint64 `json:"migrations_in"`
	MigrationsOut uint64 `json:"migrations_out"`
	Redirects     uint64 `json:"redirects"`
	Edges         int    `json:"monitored_edges"`

	// Failure tolerance: the detector's per-peer states and counters.
	Membership map[string]string       `json:"membership"`
	Failures   metrics.FailureSnapshot `json:"failures"`

	ActOpEnabled   bool  `json:"actop_enabled"`
	ExchangeRounds int   `json:"exchange_rounds"`
	ActorsMoved    int   `json:"actors_moved"`
	Retunes        int   `json:"retunes"`
	StageWorkers   []int `json:"stage_workers"` // live recv/work/send pools
	StageQueueLens []int `json:"stage_queue_lens"`

	Threads *core.Status `json:"thread_controller,omitempty"`
}

// newDebugMux serves /debug/actop (controller + node introspection) and the
// standard pprof endpoints under /debug/pprof/.
func newDebugMux(sys *actor.System, opt *core.Optimizer) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/actop", func(w http.ResponseWriter, r *http.Request) {
		st := sys.Stats()
		p := debugPayload{
			Node:          string(sys.Node()),
			Activations:   st.Activations,
			CallsLocal:    st.CallsLocal,
			CallsRemote:   st.CallsRemote,
			MigrationsIn:  st.MigrationsIn,
			MigrationsOut: st.MigrationsOut,
			Redirects:     st.Redirects,
			Edges:         st.MonitoredEdges,
		}
		for _, peer := range sys.Peers() {
			p.Peers = append(p.Peers, string(peer))
		}
		p.Membership = make(map[string]string)
		for peer, st := range sys.Membership() {
			p.Membership[string(peer)] = st.String()
		}
		p.Failures = sys.Failures()
		recv, work, send := sys.Stages()
		p.StageWorkers = []int{recv.Workers(), work.Workers(), send.Workers()}
		p.StageQueueLens = []int{recv.QueueLen(), work.QueueLen(), send.QueueLen()}
		if opt != nil {
			p.ActOpEnabled = true
			p.ExchangeRounds, p.ActorsMoved, p.Retunes = opt.Counters()
			ts := opt.ThreadStatus()
			p.Threads = &ts
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(p)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// serveDebug starts the debug server on addr (non-blocking); failures are
// logged, not fatal — the node serves traffic regardless.
func serveDebug(addr string, sys *actor.System, opt *core.Optimizer) {
	go func() {
		if err := http.ListenAndServe(addr, newDebugMux(sys, opt)); err != nil {
			log.Printf("debug server on %s: %v", addr, err)
		}
	}()
	log.Printf("debug endpoints on http://%s/debug/actop (pprof under /debug/pprof/)", addr)
}
