package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"actop/internal/actor"
	"actop/internal/metrics"
	"actop/internal/trace"
	"actop/internal/transport"
)

// newDebugNode builds a single in-memory node with the kv type, full
// sampling, and a registry — enough to exercise every debug endpoint.
func newDebugNode(t *testing.T) (*actor.System, *metrics.Registry) {
	t.Helper()
	net := transport.NewNetwork(0)
	tr := net.Join("node-a")
	reg := metrics.NewRegistry()
	sys, err := actor.NewSystem(actor.Config{
		Transport: tr, Peers: []transport.NodeID{"node-a"},
		CallTimeout:     2 * time.Second,
		TraceSampleRate: 1.0,
		Metrics:         reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.RegisterType("kv", func() actor.Actor { return &kvActor{} })
	t.Cleanup(sys.Stop)
	return sys, reg
}

func getBody(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestDebugEndpointUptime(t *testing.T) {
	sys, reg := newDebugNode(t)
	started := time.Now().Add(-3 * time.Second)
	srv := httptest.NewServer(newDebugMux(sys, nil, reg, started))
	defer srv.Close()

	code, body := getBody(t, srv, "/debug/actop")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	var p debugPayload
	if err := json.Unmarshal([]byte(body), &p); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if p.Node != "node-a" {
		t.Errorf("node = %q", p.Node)
	}
	if p.UptimeSeconds < 3 {
		t.Errorf("uptime_seconds = %v, want >= 3", p.UptimeSeconds)
	}
	if p.Now.IsZero() || time.Since(p.Now) > time.Minute {
		t.Errorf("server timestamp bogus: %v", p.Now)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	sys, reg := newDebugNode(t)
	srv := httptest.NewServer(newDebugMux(sys, nil, reg, time.Now()))
	defer srv.Close()

	for i := 0; i < 5; i++ {
		if err := sys.Call(actor.Ref{Type: "kv", Key: fmt.Sprintf("k%d", i)}, "Put", "v", nil); err != nil {
			t.Fatal(err)
		}
	}
	code, body := getBody(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	for _, want := range []string{
		`# TYPE actop_call_duration_seconds summary`,
		`actop_call_duration_seconds{method="Put",quantile="0.5"}`,
		`actop_call_duration_seconds{method="Put",quantile="0.95"}`,
		`actop_call_duration_seconds{method="Put",quantile="0.99"}`,
		`actop_call_duration_seconds_count{method="Put"} 5`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output missing %s\n%s", want, body)
		}
	}
}

func TestTracesEndpoint(t *testing.T) {
	sys, reg := newDebugNode(t)
	srv := httptest.NewServer(newDebugMux(sys, nil, reg, time.Now()))
	defer srv.Close()

	if err := sys.Call(actor.Ref{Type: "kv", Key: "traced"}, "Put", "v", nil); err != nil {
		t.Fatal(err)
	}
	// The span lands synchronously for a local call; list it.
	code, body := getBody(t, srv, "/debug/actop/traces")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	var p tracesPayload
	if err := json.Unmarshal([]byte(body), &p); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if p.Recorded == 0 || len(p.Spans) == 0 {
		t.Fatalf("no spans listed: %+v", p)
	}
	var sp trace.Span
	for _, s := range p.Spans {
		if s.Method == "Put" {
			sp = s
		}
	}
	if sp.TraceID == 0 {
		t.Fatalf("no Put span in %+v", p.Spans)
	}

	// Cluster assembly by id, both decimal and hex forms.
	for _, sel := range []string{
		fmt.Sprintf("%d", sp.TraceID),
		fmt.Sprintf("%x", sp.TraceID),
	} {
		code, body = getBody(t, srv, "/debug/actop/traces?trace="+sel)
		if code != http.StatusOK {
			t.Fatalf("status %d for trace=%s", code, sel)
		}
		var tp tracesPayload
		if err := json.Unmarshal([]byte(body), &tp); err != nil {
			t.Fatalf("bad JSON: %v", err)
		}
		if tp.TraceID != sp.TraceID || len(tp.Trees) != 1 {
			t.Fatalf("trace=%s: got id %d, %d trees", sel, tp.TraceID, len(tp.Trees))
		}
		if tp.Trees[0].Client == nil || tp.Trees[0].Client.Method != "Put" {
			t.Fatalf("assembled tree wrong: %+v", tp.Trees[0])
		}
	}

	if code, _ = getBody(t, srv, "/debug/actop/traces?trace=not-an-id"); code != http.StatusBadRequest {
		t.Errorf("bad trace id served status %d, want 400", code)
	}
}

func TestHotspotsEndpoint(t *testing.T) {
	sys, reg := newDebugNode(t)
	srv := httptest.NewServer(newDebugMux(sys, nil, reg, time.Now()))
	defer srv.Close()

	// Skew the traffic: one hot key, a few cold ones.
	for i := 0; i < 50; i++ {
		if err := sys.Call(actor.Ref{Type: "kv", Key: "hot"}, "Put", "v", nil); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if err := sys.Call(actor.Ref{Type: "kv", Key: fmt.Sprintf("cold%d", i)}, "Put", "v", nil); err != nil {
			t.Fatal(err)
		}
	}
	for _, path := range []string{"/debug/actop/hotspots?n=5", "/debug/actop/hotspots?cluster=1&n=5"} {
		code, body := getBody(t, srv, path)
		if code != http.StatusOK {
			t.Fatalf("%s: status %d", path, code)
		}
		var p hotspotsPayload
		if err := json.Unmarshal([]byte(body), &p); err != nil {
			t.Fatalf("%s: bad JSON: %v\n%s", path, err, body)
		}
		if p.Node != "node-a" || p.Tracked == 0 {
			t.Fatalf("%s: payload header wrong: %+v", path, p)
		}
		if len(p.Top) == 0 || p.Top[0].Actor != "kv/hot" {
			t.Fatalf("%s: rank 1 = %+v, want kv/hot", path, p.Top)
		}
		if len(p.Top) > 5 {
			t.Fatalf("%s: n=5 returned %d entries", path, len(p.Top))
		}
	}
}

func TestFlightEndpoint(t *testing.T) {
	sys, reg := newDebugNode(t)
	srv := httptest.NewServer(newDebugMux(sys, nil, reg, time.Now()))
	defer srv.Close()

	// A panic is both a flight event and an anomaly trigger.
	if err := sys.Call(actor.Ref{Type: "kv", Key: "victim"}, "NoSuchMethod", "x", nil); err == nil {
		t.Fatal("expected an error from an unknown method")
	}
	sys.FlightRecorder().Trigger("test_trigger", "endpoint smoke")

	code, body := getBody(t, srv, "/debug/actop/flight?limit=50")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	var p flightPayload
	if err := json.Unmarshal([]byte(body), &p); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if p.Node != "node-a" || p.Recorded == 0 || len(p.Events) == 0 {
		t.Fatalf("flight payload empty: %+v", p)
	}
	if p.Dumps != 1 || len(p.DumpList) != 1 {
		t.Fatalf("dumps = %d / %d retained, want 1", p.Dumps, len(p.DumpList))
	}
	d := p.DumpList[0]
	if d.Trigger != "test_trigger" || d.Runtime.Goroutines <= 0 {
		t.Fatalf("dump malformed: %+v", d)
	}
}
