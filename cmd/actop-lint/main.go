// Command actop-lint is the multichecker for actop's domain-specific
// analyzers: the invariants of the actor runtime (no blocking inside a
// turn), the DES (determinism), the transport (no I/O under a lock, no
// pooled-buffer escapes), and the metrics plane (bounded label
// cardinality). It is built on the standard library only — see
// internal/lint and DESIGN.md "Static analysis".
//
// Usage:
//
//	actop-lint [-list] [-only name,name] [-cache dir] [-jobs n] [-time] [packages]
//
// Analysis is whole-program: packages are analyzed in parallel in
// dependency order, facts flow along import edges, and cross-package
// Finish passes (e.g. the synchronous-call-cycle check) see every
// package. -cache enables the per-package result cache keyed on source
// and dependency export data, so warm re-runs skip unchanged packages;
// -time prints per-analyzer wall time and cache statistics to stderr.
//
// Packages default to ./... relative to the current directory. Exit
// status is 0 when clean, 1 when findings survive suppression, 2 on a
// load or internal error. Findings print as
//
//	file:line:col: [analyzer] message
//
// and are silenced line-by-line with `//actoplint:ignore <analyzer>
// <reason>` directives (see internal/lint docs for the exact scoping
// rules; reasons are mandatory and audited).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"actop/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("actop-lint", flag.ContinueOnError)
	list := fs.Bool("list", false, "print the analyzer suite and exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	cacheDir := fs.String("cache", "", "directory for the per-package analysis cache (empty: no cache)")
	jobs := fs.Int("jobs", 0, "max packages analyzed concurrently (0: GOMAXPROCS)")
	times := fs.Bool("time", false, "print per-analyzer wall time and cache stats to stderr")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		keep := map[string]bool{}
		for _, n := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(n)] = true
		}
		var sel []*lint.Analyzer
		for _, a := range analyzers {
			if keep[a.Name] {
				sel = append(sel, a)
				delete(keep, a.Name)
			}
		}
		for n := range keep {
			fmt.Fprintf(os.Stderr, "actop-lint: unknown analyzer %q (see -list)\n", n)
			return 2
		}
		analyzers = sel
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "actop-lint: %v\n", err)
		return 2
	}
	findings, stats, err := lint.RunProgram(cwd, patterns, analyzers,
		lint.Options{CacheDir: *cacheDir, Jobs: *jobs})
	if err != nil {
		fmt.Fprintf(os.Stderr, "actop-lint: %v\n", err)
		return 2
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if *times {
		printStats(stats, analyzers)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "actop-lint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// printStats reports wall time per analyzer (in suite order) plus the
// cache hit/miss split, all on stderr so finding output stays parseable.
func printStats(stats *lint.Stats, analyzers []*lint.Analyzer) {
	fmt.Fprintf(os.Stderr, "actop-lint: %d package(s) in %s (%d cached, %d analyzed)\n",
		stats.Packages, stats.Total.Round(time.Millisecond), stats.CacheHits, stats.Loaded)
	for _, a := range analyzers {
		if d, ok := stats.AnalyzerTime[a.Name]; ok {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, d.Round(time.Microsecond))
		}
	}
}
