// Command actop-sim runs one Halo Presence scenario on the deterministic
// cluster simulator with everything on flags — the free-form companion to
// actop-bench's fixed experiments.
//
//	actop-sim -players 20000 -servers 10 -load 6000 -partition -threads -measure 5m
package main

import (
	"flag"
	"fmt"
	"time"

	"actop/internal/experiments"
	"actop/internal/metrics"
)

func main() {
	var (
		players = flag.Int("players", 6000, "concurrent players")
		servers = flag.Int("servers", 3, "servers")
		load    = flag.Float64("load", 1800, "client requests/sec")
		warmup  = flag.Duration("warmup", 3*time.Minute, "warm-up (excluded from stats)")
		measure = flag.Duration("measure", 3*time.Minute, "measurement window")
		part    = flag.Bool("partition", false, "enable ActOp partitioning")
		threads = flag.Bool("threads", false, "enable ActOp thread allocation")
		oracle  = flag.Bool("oracle", false, "oracle co-location (upper bound)")
		fast    = flag.Bool("fast", true, "fast controller cadences for short runs")
		seed    = flag.Int64("seed", 1, "simulation seed")
		series  = flag.Bool("series", false, "print the remote-fraction/CPU time series")
		cdf     = flag.Bool("cdf", false, "print end-to-end and actor-call latency CDFs")
	)
	flag.Parse()

	o := experiments.HaloOpts{
		Players: *players, Servers: *servers, Load: *load,
		Warmup: *warmup, Measure: *measure,
		Partitioning: *part, ThreadTuning: *threads, Oracle: *oracle,
		FastControl: *fast, Seed: *seed, TimeScale: 1,
	}
	start := time.Now()
	r := experiments.RunHalo(o)
	fmt.Print(r.Render())
	if *series {
		fmt.Println(r.RemoteSeries.Render())
		fmt.Println(r.CPUSeries.Render())
	}
	if *cdf {
		printCDF("end-to-end", r.LatencyCDF)
		printCDF("actor-call", r.ActorCallCDF)
	}
	fmt.Printf("simulated %v of cluster time in %v\n", *warmup+*measure, time.Since(start).Round(time.Millisecond))
}

// printCDF renders one latency CDF as percentile rows (the simulated
// counterpart of the live decomposition printed by actop-bench trace).
func printCDF(name string, points []metrics.CDFPoint) {
	fmt.Printf("%s latency CDF (%d points):\n", name, len(points))
	fmt.Printf("  %8s %12s\n", "fraction", "latency")
	for _, p := range points {
		fmt.Printf("  %8.3f %12v\n", p.Fraction, p.Latency.Round(time.Microsecond))
	}
}
