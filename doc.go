// Package actop reproduces "Optimizing Distributed Actor Systems for
// Dynamic Interactive Services" (Newell et al., EuroSys 2016).
//
// The repository contains two complementary halves:
//
//   - a real, goroutine-based distributed virtual-actor runtime with
//     ActOp's optimizations attached (internal/actor, internal/seda,
//     internal/transport, internal/core) — the adoptable library; and
//   - a deterministic discrete-event cluster simulator (internal/des,
//     internal/sim, internal/workload, internal/experiments) that
//     regenerates every table and figure of the paper's evaluation at
//     cluster scale on a single core.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured results.
package actop
