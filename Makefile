# Standard-library-only Go project; no generated code. The only tools are
# built from this module (cmd/actop-lint) or optional pinned installs
# (staticcheck in CI).

GO ?= go
LINT_BIN := bin/actop-lint

.PHONY: check build test vet staticcheck lint lint-cold lint-cache-check race fuzz-smoke bench-msgplane cluster-smoke bench-scale workloads-smoke bench-workloads chaos-smoke bench-recovery obs-smoke

# check is the pre-PR gate: vet (+ staticcheck when installed), the
# domain lint suite, build everything, race-test the concurrency-heavy
# packages (transport, actor, seda, codec, durable, loadgen, flight,
# hotspot), then the full tier-1 suite, a short fuzz pass over the wire
# decoders, a reduced-scale run of the multi-process cluster benchmark,
# the DES-vs-real workload conformance smoke, the crash-chaos battery
# over the durability plane, and the observability smoke (skewed-workload
# hot-actor ranking + SLO-breach flight dump).
check: vet staticcheck lint build race test fuzz-smoke cluster-smoke workloads-smoke chaos-smoke obs-smoke

# lint builds the whole-program analyzer suite once into bin/ and runs
# it over the module with the per-package result cache under
# bin/.lintcache: packages whose sources and dependency export data are
# unchanged restore their findings and facts from disk instead of being
# re-type-checked. -time prints the per-analyzer wall-time split and the
# cache hit/miss counts. See DESIGN.md "Static analysis".
lint:
	$(GO) build -o $(LINT_BIN) ./cmd/actop-lint
	./$(LINT_BIN) -cache bin/.lintcache -time ./...

# lint-cold ignores any existing cache (fresh cache dir each run) — the
# baseline CI compares the warm run against.
lint-cold:
	$(GO) build -o $(LINT_BIN) ./cmd/actop-lint
	rm -rf bin/.lintcache-cold
	./$(LINT_BIN) -cache bin/.lintcache-cold -time ./...

# lint-cache-check asserts the cache actually pays: a cold run populates
# a fresh cache, then a warm re-run over the identical tree must finish
# at least 2x faster. Timing uses millisecond wall clock via date.
lint-cache-check:
	$(GO) build -o $(LINT_BIN) ./cmd/actop-lint
	rm -rf bin/.lintcache-ci
	@cold_start=$$(date +%s%N); \
	./$(LINT_BIN) -cache bin/.lintcache-ci ./... || exit $$?; \
	cold_end=$$(date +%s%N); \
	warm_start=$$(date +%s%N); \
	./$(LINT_BIN) -cache bin/.lintcache-ci ./... || exit $$?; \
	warm_end=$$(date +%s%N); \
	cold_ms=$$(( (cold_end - cold_start) / 1000000 )); \
	warm_ms=$$(( (warm_end - warm_start) / 1000000 )); \
	echo "lint cold: $${cold_ms}ms  warm: $${warm_ms}ms"; \
	if [ $$(( warm_ms * 2 )) -gt $$cold_ms ]; then \
		echo "lint cache check FAILED: warm run ($${warm_ms}ms) is not >=2x faster than cold ($${cold_ms}ms)"; \
		exit 1; \
	fi

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# staticcheck runs when the binary is on PATH (CI installs a pinned
# version; offline dev environments skip it rather than fail).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it pinned)"; \
	fi

race:
	$(GO) test -race -count=1 ./internal/transport/... ./internal/actor/... ./internal/seda/... ./internal/codec/... ./internal/durable/... ./internal/loadgen/... ./internal/workload/spec/... ./internal/flight/... ./internal/hotspot/...

test:
	$(GO) test ./...

# fuzz-smoke runs each wire-decoder fuzz target briefly — enough for CI to
# catch a decode panic or over-allocation regression without open-ended
# fuzzing time.
fuzz-smoke:
	$(GO) test -run XXX -fuzz FuzzDecodeEnvelope -fuzztime 10s ./internal/transport
	$(GO) test -run XXX -fuzz FuzzFrameRead -fuzztime 10s ./internal/codec
	$(GO) test -run XXX -fuzz FuzzFrameRoundTrip -fuzztime 5s ./internal/codec
	$(GO) test -run XXX -fuzz FuzzHistogramDecode -fuzztime 5s ./internal/metrics
	$(GO) test -run XXX -fuzz FuzzSnapshotDecode -fuzztime 10s ./internal/durable

# obs-smoke exercises the observability plane end to end: a skewed
# workload on a 3-node in-memory cluster must rank the injected hot actor
# first in the cluster-wide hot-actor table, and a breached p99 SLO
# window must produce exactly one (debounced) flight-recorder dump.
obs-smoke:
	$(GO) test -run 'TestObsSmoke|TestSLOBreachDump' -count=1 ./internal/actor

# chaos-smoke is the crash-chaos battery: hard-kill a node mid-traffic
# under the matchmaking and IoT workload specs and check the exactly-once
# oracle — durable actors recover with state (0 lost), and the
# no-durability control demonstrably loses state. Fresh run every time
# (-count=1): chaos timing must not be cached away.
chaos-smoke:
	$(GO) test -run 'TestChaosKill' -count=1 ./internal/loadgen

# bench-msgplane runs the message-plane micro-benchmarks (codec marshal /
# deep copy, TCP throughput, local/remote call round trips).
bench-msgplane:
	$(GO) test -run XXX -bench 'BenchmarkCodec|BenchmarkTCPSendThroughput|BenchmarkMsgPlane' -benchmem ./internal/codec/ ./internal/transport/ .

# cluster-smoke drives the real multi-process loopback-TCP cluster at a
# reduced scale (~10K actors, short drive, no COST baseline) — enough for
# CI to catch a protocol or routing regression in minutes. The full sweep
# is bench-scale.
cluster-smoke:
	$(GO) build -o bin/actop-bench ./cmd/actop-bench
	./bin/actop-bench cluster -nodes 2 -actors 10000 -conc 8 -drive 3s -work 500 -cost=false -out bin/BENCH_scale_smoke.json

# bench-scale is the paper-scale run: 100K and 1M live activations on a
# 4-node loopback cluster plus the single-threaded COST baseline, written
# to BENCH_scale.json.
bench-scale:
	$(GO) build -o bin/actop-bench ./cmd/actop-bench
	./bin/actop-bench cluster -out BENCH_scale.json

# workloads-smoke cross-checks every built-in workload spec between the
# DES and a real 3-node loopback cluster at half scale (no COST baseline)
# — the conformance gate that a spec means the same thing to both
# interpreters. The full artifact run is bench-workloads.
workloads-smoke:
	$(GO) build -o bin/actop-bench ./cmd/actop-bench
	./bin/actop-bench workloads -smoke -out bin/BENCH_workloads_smoke.json

# bench-workloads regenerates BENCH_workloads.json: all five scenarios at
# full scale through both backends, conformance-checked, with per-scenario
# GOMAXPROCS=1 COST baselines.
bench-workloads:
	$(GO) build -o bin/actop-bench ./cmd/actop-bench
	./bin/actop-bench workloads -out BENCH_workloads.json

# bench-recovery regenerates BENCH_recovery.json: per-turn snapshot
# overhead at 0/1/2 replicas, and kill-to-recovered timing for 10K
# durable actors at K=1 and K=2 with the exactly-once state oracle.
bench-recovery:
	$(GO) build -o bin/actop-bench ./cmd/actop-bench
	./bin/actop-bench recovery -out BENCH_recovery.json
