# Standard-library-only Go project; no generated code. The only tools are
# built from this module (cmd/actop-lint) or optional pinned installs
# (staticcheck in CI).

GO ?= go
LINT_BIN := bin/actop-lint

.PHONY: check build test vet staticcheck lint race fuzz-smoke bench-msgplane

# check is the pre-PR gate: vet (+ staticcheck when installed), the
# domain lint suite, build everything, race-test the concurrency-heavy
# packages (transport, actor, seda, codec), then the full tier-1 suite,
# then a short fuzz pass over the wire decoders.
check: vet staticcheck lint build race test fuzz-smoke

# lint builds the domain-specific analyzer suite once into bin/ (so
# repeated runs reuse the Go build cache and the binary) and runs it over
# the whole module. See DESIGN.md "Static analysis" for what it enforces.
lint:
	$(GO) build -o $(LINT_BIN) ./cmd/actop-lint
	./$(LINT_BIN) ./...

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# staticcheck runs when the binary is on PATH (CI installs a pinned
# version; offline dev environments skip it rather than fail).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it pinned)"; \
	fi

race:
	$(GO) test -race -count=1 ./internal/transport/... ./internal/actor/... ./internal/seda/... ./internal/codec/...

test:
	$(GO) test ./...

# fuzz-smoke runs each wire-decoder fuzz target briefly — enough for CI to
# catch a decode panic or over-allocation regression without open-ended
# fuzzing time.
fuzz-smoke:
	$(GO) test -run XXX -fuzz FuzzDecodeEnvelope -fuzztime 10s ./internal/transport
	$(GO) test -run XXX -fuzz FuzzFrameRead -fuzztime 10s ./internal/codec
	$(GO) test -run XXX -fuzz FuzzFrameRoundTrip -fuzztime 5s ./internal/codec

# bench-msgplane runs the message-plane micro-benchmarks (codec marshal /
# deep copy, TCP throughput, local/remote call round trips).
bench-msgplane:
	$(GO) test -run XXX -bench 'BenchmarkCodec|BenchmarkTCPSendThroughput|BenchmarkMsgPlane' -benchmem ./internal/codec/ ./internal/transport/ .
