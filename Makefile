# Standard-library-only Go project; no generated code, no external tools.

GO ?= go

.PHONY: check build test vet race bench-msgplane

# check is the pre-PR gate: vet, build everything, race-test the
# concurrency-heavy packages (transport, actor, seda, codec), then the full
# tier-1 suite.
check: vet build race test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race -count=1 ./internal/transport/... ./internal/actor/... ./internal/seda/... ./internal/codec/...

test:
	$(GO) test ./...

# bench-msgplane runs the message-plane micro-benchmarks (codec marshal /
# deep copy, TCP throughput, local/remote call round trips).
bench-msgplane:
	$(GO) test -run XXX -bench 'BenchmarkCodec|BenchmarkTCPSendThroughput|BenchmarkMsgPlane' -benchmem ./internal/codec/ ./internal/transport/ .
