module actop

go 1.22
