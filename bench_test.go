// Benchmarks regenerating the paper's tables and figures at reduced scale
// (one per evaluation artifact; run `cmd/actop-bench -full <name>` for paper
// scale), plus micro-benchmarks of ActOp's core primitives.
//
// Each figure benchmark executes a full simulated experiment per iteration
// (seconds of wall time) and reports the headline metric the paper plots as
// a custom unit, so `go test -bench` output doubles as a results table.
package actop_test

import (
	"fmt"
	"testing"
	"time"

	"actop/internal/des"
	"actop/internal/experiments"
	"actop/internal/graph"
	"actop/internal/metrics"
	"actop/internal/partition"
	"actop/internal/queuing"
	"actop/internal/sampling"
)

// benchHalo is the reduced-scale Halo configuration used by the figure
// benchmarks: the paper's per-server operating point with 2 servers and
// short windows.
func benchHalo() experiments.HaloOpts {
	return experiments.HaloOpts{
		Players: 2000, Servers: 2, Load: 1200,
		Warmup: 90 * time.Second, Measure: time.Minute,
		FastControl: true, Seed: 1,
	}
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// BenchmarkSection3Motivation regenerates the §3 random-vs-co-located
// comparison (paper: median 41→24 ms, p99 736→225 ms, ~90% remote).
func BenchmarkSection3Motivation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunSection3(benchHalo())
		b.ReportMetric(ms(r.Baseline.Latency.Median), "base_p50_ms")
		b.ReportMetric(ms(r.Oracle.Latency.Median), "colo_p50_ms")
		b.ReportMetric(100*r.Baseline.RemoteFraction, "base_remote_%")
	}
}

// BenchmarkFig4Breakdown regenerates the latency breakdown (paper: queues
// ≈88% of end-to-end latency, network ≈1%).
func BenchmarkFig4Breakdown(b *testing.B) {
	o := experiments.DefaultCounterOpts()
	o.Measure = 30 * time.Second
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig4(o)
		queues := r.Run.Breakdown.Percent("Recv. queue") +
			r.Run.Breakdown.Percent("Worker queue") +
			r.Run.Breakdown.Percent("Sender queue")
		b.ReportMetric(queues, "queue_share_%")
		b.ReportMetric(r.Run.Breakdown.Percent("Network"), "network_share_%")
	}
}

// BenchmarkFig5HeatMap regenerates the thread-allocation heat map corners
// (paper: worst/best ≈ 3.9×; the controller's pick lands at the best).
func BenchmarkFig5HeatMap(b *testing.B) {
	o := experiments.DefaultCounterOpts()
	o.Measure = 30 * time.Second
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig5(o, []int{2, 4, 8}, []int{3, 6, 8})
		best, _, _ := r.Best()
		worst, _, _ := r.Worst()
		b.ReportMetric(ms(best), "best_p50_ms")
		b.ReportMetric(ms(worst), "worst_p50_ms")
		b.ReportMetric(ms(r.Tuned.Latency.Median), "tuned_p50_ms")
	}
}

// BenchmarkFig7QueueController regenerates the controller-instability
// experiment (paper: queue-threshold controller oscillates; Fig. 7).
func BenchmarkFig7QueueController(b *testing.B) {
	o := experiments.DefaultFig7Opts()
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig7(o)
		b.ReportMetric(float64(r.QueueFlips), "queue_ctl_flips")
		b.ReportMetric(float64(r.ModelFlips), "model_ctl_flips")
	}
}

// BenchmarkFig10aConvergence regenerates the convergence series (paper:
// remote messages 90%→12% in ~10 min; ≈1%/min of actors moved thereafter).
func BenchmarkFig10aConvergence(b *testing.B) {
	o := benchHalo()
	o.Warmup = 3 * time.Minute
	o.Measure = time.Minute
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig10a(o)
		pts := r.Partitioned.RemoteSeries.Points
		b.ReportMetric(100*pts[0].Value, "remote_start_%")
		b.ReportMetric(100*pts[len(pts)-1].Value, "remote_end_%")
		b.ReportMetric(r.Partitioned.MoveSeries.Last(), "moves_per_min")
	}
}

// BenchmarkFig10bLatencyCDF regenerates the end-to-end latency comparison
// (paper: median −42%, p99 −69% at top load).
func BenchmarkFig10bLatencyCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig10bc(benchHalo())
		b.ReportMetric(ms(r.Baseline.Latency.Median), "base_p50_ms")
		b.ReportMetric(ms(r.Partitioned.Latency.Median), "actop_p50_ms")
		b.ReportMetric(ms(r.Baseline.Latency.P99), "base_p99_ms")
		b.ReportMetric(ms(r.Partitioned.Latency.P99), "actop_p99_ms")
	}
}

// BenchmarkFig10cActorCallCDF regenerates the server-to-server call
// latencies (paper: median 5→3 ms, p99 297→56 ms).
func BenchmarkFig10cActorCallCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig10bc(benchHalo())
		b.ReportMetric(ms(r.Baseline.ActorCall.Median), "base_p50_ms")
		b.ReportMetric(ms(r.Partitioned.ActorCall.Median), "actop_p50_ms")
		b.ReportMetric(ms(r.Baseline.ActorCall.P99), "base_p99_ms")
		b.ReportMetric(ms(r.Partitioned.ActorCall.P99), "actop_p99_ms")
	}
}

// BenchmarkFig10dLoadSweep regenerates the improvement-by-load rows
// (paper: gains grow with load).
func BenchmarkFig10dLoadSweep(b *testing.B) {
	o := benchHalo()
	o.Measure = 45 * time.Second
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig10de(o, []float64{400, 1200})
		lo, hi := r.Rows[0], r.Rows[1]
		b.ReportMetric(metrics.Improvement(lo.Baseline.Latency.P99, lo.Partitioned.Latency.P99), "lowload_p99_impr_%")
		b.ReportMetric(metrics.Improvement(hi.Baseline.Latency.P99, hi.Partitioned.Latency.P99), "topload_p99_impr_%")
	}
}

// BenchmarkFig10eCPU regenerates the CPU-utilization rows (paper: −25% to
// −45% relative at 2K–6K req/s).
func BenchmarkFig10eCPU(b *testing.B) {
	o := benchHalo()
	o.Measure = 45 * time.Second
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig10de(o, []float64{1200})
		row := r.Rows[0]
		b.ReportMetric(100*row.Baseline.CPUUtilization, "base_cpu_%")
		b.ReportMetric(100*row.Partitioned.CPUUtilization, "actop_cpu_%")
	}
}

// BenchmarkFig10fActorScale regenerates the player-count sweep (paper:
// improvement sustained from 10K to 1M actors).
func BenchmarkFig10fActorScale(b *testing.B) {
	o := benchHalo()
	o.Load = 800
	o.Measure = 45 * time.Second
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig10f(o, []int{1000, 4000})
		for _, row := range r.Rows {
			b.ReportMetric(metrics.Improvement(row.Baseline.Latency.Median, row.Partitioned.Latency.Median),
				fmt.Sprintf("p50_impr_%dplayers_%%", row.Players))
		}
	}
}

// BenchmarkFig11aThreadAlloc regenerates the thread-allocation-only rows
// (paper: −58% median / −68% p99 at 15K req/s).
func BenchmarkFig11aThreadAlloc(b *testing.B) {
	o := experiments.DefaultHeartbeatOpts()
	o.Measure = 45 * time.Second
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig11a(o, []float64{15000})
		row := r.Rows[0]
		b.ReportMetric(metrics.Improvement(row.Baseline.Latency.Median, row.Tuned.Latency.Median), "p50_impr_%")
		b.ReportMetric(metrics.Improvement(row.Baseline.Latency.P99, row.Tuned.Latency.P99), "p99_impr_%")
	}
}

// BenchmarkFig11bCombined regenerates the combined-optimizations comparison
// (paper: total −55% median / −75% p99).
func BenchmarkFig11bCombined(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig11b(benchHalo())
		b.ReportMetric(metrics.Improvement(r.Baseline.Latency.Median, r.Combined.Latency.Median), "p50_impr_%")
		b.ReportMetric(metrics.Improvement(r.Baseline.Latency.P99, r.Combined.Latency.P99), "p99_impr_%")
	}
}

// BenchmarkThroughputPeak regenerates the §6.1 saturation search (paper:
// peak 6K → 12K req/s, 2×).
func BenchmarkThroughputPeak(b *testing.B) {
	o := benchHalo()
	o.Warmup = 90 * time.Second
	o.Measure = 45 * time.Second
	for i := 0; i < b.N; i++ {
		r := experiments.RunThroughput(o, []float64{1200, 1800, 2400})
		base, actop := r.Peaks()
		b.ReportMetric(base, "base_peak_rps")
		b.ReportMetric(actop, "actop_peak_rps")
	}
}

// --- ablations (design choices called out in DESIGN.md) ---

// BenchmarkAblationOneSided contrasts the rejected uncoordinated-migration
// design (§4.1) against pairwise exchange on the same graph.
func BenchmarkAblationOneSided(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := graph.NoisyCliques(10, 8, 5, 0.3, 120, 7)
		servers := []graph.ServerID{0, 1, 2, 3}
		opts := partition.DefaultOptions()
		opts.ImbalanceTolerance = 8

		a1 := graph.HashAssignment(g, servers)
		for r := 0; r < 20; r++ {
			partition.OneSidedRound(opts, g, a1)
		}
		a2 := graph.HashAssignment(g, servers)
		e := partition.NewEngine(opts, g, a2, 3)
		e.RunToConvergence(40)

		b.ReportMetric(float64(a1.Imbalance()), "onesided_imbalance")
		b.ReportMetric(float64(a2.Imbalance()), "pairwise_imbalance")
		b.ReportMetric(graph.CutCost(g, a1), "onesided_cut")
		b.ReportMetric(graph.CutCost(g, a2), "pairwise_cut")
	}
}

// BenchmarkAblationSamplingCapacity sweeps the Space-Saving capacity (§4.3
// edge sampling): quality holds far below the true edge count.
func BenchmarkAblationSamplingCapacity(b *testing.B) {
	for _, capacity := range []int{32, 128, 1024} {
		b.Run(fmt.Sprintf("k=%d", capacity), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g := graph.NoisyCliques(8, 8, 10, 0.2, 150, 11)
				a := graph.HashAssignment(g, []graph.ServerID{0, 1, 2, 3})
				opts := partition.DefaultOptions()
				opts.ImbalanceTolerance = 8
				e := partition.NewEngine(opts, g, a, 5)
				e.EnableMonitors(capacity)
				now := time.Duration(0)
				for r := 0; r < 30; r++ {
					e.FeedMonitors(10)
					now += e.RejectWindow + time.Second
					e.Round(now)
				}
				b.ReportMetric(100*graph.RemoteFraction(g, a), "remote_%")
			}
		})
	}
}

// BenchmarkAblationJaBeJa contrasts the Ja-Be-Ja-style per-vertex baseline
// (§7): balance preserved exactly, but far more migrations per unit of cut
// reduction.
func BenchmarkAblationJaBeJa(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := graph.NoisyCliques(10, 8, 5, 0.3, 120, 13)
		servers := []graph.ServerID{0, 1, 2, 3}
		a1 := graph.HashAssignment(g, servers)
		j := partition.NewJaBeJa(g, a1, 17)
		j.Run(2000, 40)
		a2 := graph.HashAssignment(g, servers)
		opts := partition.DefaultOptions()
		opts.ImbalanceTolerance = 8
		e := partition.NewEngine(opts, g, a2, 19)
		e.RunToConvergence(40)
		b.ReportMetric(float64(2*j.Swaps), "jabeja_moves")
		b.ReportMetric(float64(e.Moves), "pairwise_moves")
		b.ReportMetric(graph.CutCost(g, a1), "jabeja_cut")
		b.ReportMetric(graph.CutCost(g, a2), "pairwise_cut")
	}
}

// --- micro-benchmarks of the core primitives ---

func BenchmarkSpaceSavingObserve(b *testing.B) {
	s := sampling.NewSpaceSaving[uint64](4096)
	r := des.NewRand(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Observe(uint64(r.Intn(100000)), 1)
	}
}

func BenchmarkHistogramRecord(b *testing.B) {
	var h metrics.Histogram
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Record(time.Duration(i%1000) * time.Microsecond)
	}
}

func BenchmarkTheorem2ClosedForm(b *testing.B) {
	m := &queuing.Model{
		Stages: []queuing.Stage{
			{Lambda: 1000, ServiceRate: 5000, Beta: 1},
			{Lambda: 1000, ServiceRate: 2000, Beta: 0.9},
			{Lambda: 1000, ServiceRate: 4000, Beta: 1},
		},
		Processors: 8, Eta: 1e-4,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := queuing.Solve(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExchangeDecision(b *testing.B) {
	g := graph.NoisyCliques(8, 8, 5, 0.3, 100, 23)
	a := graph.HashAssignment(g, []graph.ServerID{0, 1})
	opts := partition.DefaultOptions()
	view := partition.GraphView{G: g}
	local0 := a.VerticesOn(0)
	props := partition.SelectCandidates(opts, view, a, 0, local0, len(local0))
	if len(props) == 0 {
		b.Skip("no proposals on this fixture")
	}
	req := partition.ExchangeRequest{From: 0, To: 1, Candidates: props[0].Candidates, FromPopulation: len(local0)}
	local1 := a.VerticesOn(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		partition.DecideExchange(opts, view, a, req, local1, len(local1))
	}
}

func BenchmarkDESEventThroughput(b *testing.B) {
	var k des.Kernel
	n := 0
	var next func()
	next = func() {
		n++
		if n < b.N {
			k.After(time.Microsecond, next)
		}
	}
	b.ResetTimer()
	k.After(0, next)
	k.Run()
}

// BenchmarkSelectCandidatesScaling checks the §4.2 complexity claim: the
// per-round cost is practically linear in the vertices per server.
func BenchmarkSelectCandidatesScaling(b *testing.B) {
	for _, n := range []int{1000, 4000, 16000} {
		b.Run(fmt.Sprintf("V=%d", n), func(b *testing.B) {
			cliques := n / 8
			g := graph.Cliques(cliques, 8, 1)
			a := graph.HashAssignment(g, []graph.ServerID{0, 1, 2, 3})
			opts := partition.DefaultOptions()
			view := partition.GraphView{G: g}
			local := a.VerticesOn(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				partition.SelectCandidates(opts, view, a, 0, local, len(local))
			}
		})
	}
}
