// Message-plane benchmarks of the real (non-simulated) runtime: local
// actor calls through the zero-copy value path vs the serializing path,
// and remote calls over loopback TCP. These complement the codec and
// transport micro-benchmarks (internal/codec, internal/transport) with the
// full System.Call stack.
package actop_test

import (
	"fmt"
	"testing"
	"time"

	"actop/internal/actor"
	"actop/internal/codec"
	"actop/internal/transport"
	"actop/internal/workload"
)

// benchCounter serves workload.CounterAdd through both receive paths.
type benchCounter struct{ n int64 }

func (c *benchCounter) Receive(ctx *actor.Context, method string, args []byte) ([]byte, error) {
	switch method {
	case "Add": // fast-path message (arrives here on remote calls)
		var add workload.CounterAdd
		if err := codec.Unmarshal(args, &add); err != nil {
			return nil, err
		}
		c.n += add.Delta
		return codec.Marshal(workload.CounterValue{N: c.n})
	case "AddEnc": // gob-fallback message
		var add encodedCounterAdd
		if err := codec.Unmarshal(args, &add); err != nil {
			return nil, err
		}
		c.n += add.Delta
		return codec.Marshal(encodedCounterValue{N: c.n})
	}
	return nil, fmt.Errorf("no method %q", method)
}

func (c *benchCounter) ReceiveValue(ctx *actor.Context, method string, args interface{}) (interface{}, error) {
	if method != "Add" {
		return nil, fmt.Errorf("no method %q", method)
	}
	c.n += args.(workload.CounterAdd).Delta
	return workload.CounterValue{N: c.n}, nil
}

// encodedCounterAdd/Value are the same messages without fast-path methods,
// to force the serializing path for comparison.
type encodedCounterAdd struct{ Delta int64 }
type encodedCounterValue struct{ N int64 }

func newBenchSystem(b *testing.B, tr transport.Transport, peers []transport.NodeID) *actor.System {
	b.Helper()
	sys, err := actor.NewSystem(actor.Config{
		Transport: tr, Peers: peers,
		Placement: actor.PlaceLocal, Seed: 1,
		CallTimeout: 10 * time.Second,
	})
	if err != nil {
		b.Fatal(err)
	}
	sys.RegisterType("counter", func() actor.Actor { return &benchCounter{} })
	return sys
}

// BenchmarkMsgPlaneLocalCall measures a full System.Call round trip to a
// co-located actor: the value sub-benchmark rides the zero-copy fast path
// (CopyValue in, CopyValue out), encoded pays marshal/unmarshal both ways.
func BenchmarkMsgPlaneLocalCall(b *testing.B) {
	net := transport.NewNetwork(0)
	tr := net.Join("solo")
	sys := newBenchSystem(b, tr, []transport.NodeID{"solo"})
	defer sys.Stop()
	ref := actor.Ref{Type: "counter", Key: "c"}

	b.Run("value", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var out workload.CounterValue
			if err := sys.Call(ref, "Add", workload.CounterAdd{Delta: 1}, &out); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("encoded", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var out encodedCounterValue
			if err := sys.Call(ref, "AddEnc", encodedCounterAdd{Delta: 1}, &out); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMsgPlaneRemoteCall measures a full RPC between two nodes over
// loopback TCP: framing codec, write coalescing, and the SEDA pipeline on
// both ends.
func BenchmarkMsgPlaneRemoteCall(b *testing.B) {
	trA, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	trB, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	peers := []transport.NodeID{trA.Node(), trB.Node()}
	sysA := newBenchSystem(b, trA, peers)
	defer sysA.Stop()
	sysB := newBenchSystem(b, trB, peers)
	defer sysB.Stop()

	// PlaceLocal pins the actor to the first caller: activate from B, then
	// every call from A is remote.
	ref := actor.Ref{Type: "counter", Key: "remote"}
	var out workload.CounterValue
	if err := sysB.Call(ref, "Add", workload.CounterAdd{Delta: 0}, &out); err != nil {
		b.Fatal(err)
	}
	if !sysB.HostsActor(ref) {
		b.Fatal("fixture: actor not hosted on B")
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sysA.Call(ref, "Add", workload.CounterAdd{Delta: 1}, &out); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if got := sysA.Stats().CallsRemote; got < uint64(b.N) {
		b.Fatalf("only %d of %d calls went remote", got, b.N)
	}
}
